"""Bloom filter (Broder & Mitzenmacher 2004).

NetCache places a Bloom filter after the Count-Min sketch so each uncached
hot key is reported to the controller only once per statistics interval
(§4.4.3).  The prototype uses 3 register arrays of 256K 1-bit slots.

Bit state is numpy-backed with an epoch-stamped O(1) reset: a bit is set
iff its generation stamp equals the current epoch, so the per-interval
clear (previously three 256K-iteration Python loops) is a single counter
bump.  Membership behaviour is bit-for-bit identical to the scalar
reference (:class:`repro.sketch.reference.ScalarBloomFilter`).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sketch.hashing import HashFamily


class BloomFilter:
    """A classic Bloom filter over byte-string keys.

    Parameters
    ----------
    bits:
        Slots per register array (each array holds one hash function's bits,
        as on the switch where each array is in its own stage).
    num_hashes:
        Number of hash functions / register arrays.
    seed:
        Base seed for the hash family.
    """

    def __init__(self, bits: int = 256 * 1024, num_hashes: int = 3, seed: int = 1):
        if bits <= 0:
            raise ConfigurationError("bits must be positive")
        if num_hashes <= 0:
            raise ConfigurationError("num_hashes must be positive")
        self.bits = bits
        self.num_hashes = num_hashes
        self._hashes = HashFamily(num_hashes, seed=seed)
        #: a bit is set iff its stamp equals the current epoch.
        self._stamps = np.full((num_hashes, bits), -1, dtype=np.int32)
        self._epoch = 0
        self.inserted = 0

    @property
    def hash_family(self) -> HashFamily:
        """The per-array hash family (the digest layer precomputes bits)."""
        return self._hashes

    def _positions(self, key: bytes) -> Sequence[int]:
        return self._hashes.indexes(key, self.bits)

    def add(self, key: bytes) -> bool:
        """Insert *key*; return True if it was (probably) already present.

        The switch performs test-and-set in one pass: each register array
        reads the old bit and writes 1.  The key was present iff every old
        bit was already set.
        """
        return self.add_at(self._positions(key))

    def add_at(self, positions: Sequence[int]) -> bool:
        """Test-and-set by precomputed bit positions (digest fast path)."""
        epoch = self._epoch
        stamps = self._stamps
        present = True
        for row, idx in enumerate(positions):
            if stamps[row, idx] != epoch:
                present = False
                stamps[row, idx] = epoch
        if not present:
            self.inserted += 1
        return present

    def contains(self, key: bytes) -> bool:
        """Membership test without inserting."""
        return self.contains_at(self._positions(key))

    def contains_at(self, positions: Sequence[int]) -> bool:
        """Membership test by precomputed bit positions."""
        epoch = self._epoch
        stamps = self._stamps
        return all(stamps[row, idx] == epoch
                   for row, idx in enumerate(positions))

    def reset(self) -> None:
        """Clear all bits (done at every statistics reset).  O(1): bumps
        the generation stamp instead of zeroing the arrays."""
        self._epoch += 1
        self.inserted = 0

    @property
    def sram_bytes(self) -> int:
        """SRAM consumed by the filter (1 bit per slot)."""
        return self.num_hashes * self.bits // 8

    def false_positive_rate(self) -> float:
        """Analytic false-positive probability at the current fill level."""
        # Each hash has its own array of `bits` slots, so the per-row fill is
        # inserted / bits, and the FP probability is the product of per-row
        # hit probabilities.
        import math

        per_row = 1.0 - math.exp(-self.inserted / self.bits)
        return per_row ** self.num_hashes
