"""Deterministic seeded hash functions.

The Tofino ASIC provides hardware hash units that compute "random XORing of
bits of the key field" (§6).  We substitute a software mixer in the spirit of
xxHash/splitmix64: fast, deterministic, and with independent streams selected
by seed.  All sketch and partitioning code in the library routes through this
module so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

_MASK64 = (1 << 64) - 1

# splitmix64 constants
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def _splitmix64(x: int) -> int:
    """One round of the splitmix64 finalizer."""
    x = (x + _GAMMA) & _MASK64
    x = ((x ^ (x >> 30)) * _MIX1) & _MASK64
    x = ((x ^ (x >> 27)) * _MIX2) & _MASK64
    return x ^ (x >> 31)


def hash_bytes(data: bytes, seed: int = 0) -> int:
    """Hash *data* to a 64-bit integer using stream *seed*.

    Independent seeds give (empirically) independent hash functions, which is
    what the Count-Min sketch analysis requires.
    """
    h = _splitmix64(seed ^ (len(data) * _GAMMA & _MASK64))
    # Consume 8-byte words.
    n = len(data)
    i = 0
    while i + 8 <= n:
        word = int.from_bytes(data[i : i + 8], "little")
        h = _splitmix64(h ^ word)
        i += 8
    if i < n:
        tail = int.from_bytes(data[i:], "little")
        h = _splitmix64(h ^ tail)
    return h


def hash_key(key: bytes, seed: int = 0, modulus: int = 0) -> int:
    """Hash a key; if *modulus* is positive, reduce into ``[0, modulus)``."""
    h = hash_bytes(key, seed)
    if modulus > 0:
        return h % modulus
    return h


class HashFamily:
    """A family of independent hash functions indexed by row.

    Used by the Count-Min sketch (4 rows) and Bloom filter (3 hashes).  Each
    row *i* of a family with base seed ``s`` uses stream ``splitmix64(s + i)``
    so distinct families never share streams.
    """

    def __init__(self, num_hashes: int, seed: int = 0):
        if num_hashes <= 0:
            raise ValueError("num_hashes must be positive")
        self.num_hashes = num_hashes
        self.seed = seed
        self._seeds: List[int] = [_splitmix64(seed + i) for i in range(num_hashes)]

    @property
    def seeds(self) -> Tuple[int, ...]:
        """Per-row stream seeds (the digest layer precomputes with these)."""
        return tuple(self._seeds)

    def indexes(self, key: bytes, modulus: int) -> List[int]:
        """Return one index in ``[0, modulus)`` per hash function."""
        return [hash_bytes(key, s) % modulus for s in self._seeds]

    def index(self, row: int, key: bytes, modulus: int) -> int:
        """Return the index for a single *row* of the family."""
        return hash_bytes(key, self._seeds[row]) % modulus

    def __len__(self) -> int:
        return self.num_hashes


def fingerprint(key: bytes, bits: int = 32, seed: int = 0xF1F1) -> int:
    """Short fingerprint of a key (used for collision checks in hashed-key
    mode, §5 "Restricted key-value interface")."""
    if not 0 < bits <= 64:
        raise ValueError("bits must be in (0, 64]")
    return hash_bytes(key, seed) >> (64 - bits)


def combined_hash(parts: Iterable[bytes], seed: int = 0) -> int:
    """Hash a sequence of byte strings order-sensitively."""
    h = _splitmix64(seed)
    for part in parts:
        h = _splitmix64(h ^ hash_bytes(part, seed))
    return h
