"""Key-digest interning: compute every per-key derived index once.

Each packet that reaches the query-statistics engine used to pay ~8
independent :func:`~repro.sketch.hashing.hash_bytes` passes — one per
Count-Min row, one per Bloom array, one for the hash-mode sampler — even
though all of them are pure functions of the raw key bytes.  The Tofino
computes these in parallel hash units at line rate; in Python they dominate
the wall-clock cost of a run.

:class:`DigestTable` memoizes a :class:`KeyDigest` per key in a bounded
FIFO table keyed by the raw key bytes, so the steady-state cost of the
data-plane hot path drops to one dict probe.  The digests hold exactly the
values the scalar code would compute — same hash family, same seeds, same
modular reduction — so cached and uncached lookups are bit-for-bit
interchangeable (property-tested in ``tests/test_prop_digest.py``).

The sampler hash is the one epoch-dependent derived value: hash mode seeds
the key hash with ``seed ^ (epoch * 0x9E37)`` so decisions decorrelate
across statistics intervals.  The digest caches it per epoch and recomputes
lazily when the epoch moves, which keeps a statistics ``reset()`` O(1) with
respect to the digest table as well.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.sketch.hashing import HashFamily, hash_bytes

#: epoch-mixing constant of the hash-mode sampler (see PacketSampler).
SAMPLER_EPOCH_GAMMA = 0x9E37

#: default bound on interned keys; at ~200 bytes per digest this caps the
#: table around a dozen MB while comfortably covering the hot head plus the
#: recently-seen tail of a Zipf stream.
DEFAULT_CAPACITY = 64 * 1024


class KeyDigest:
    """All derived indexes of one key, computed once.

    ``cm_indexes`` are the Count-Min slot indexes (one per row),
    ``bloom_bits`` the Bloom filter bit positions (one per array), and
    ``fingerprint`` the short collision-check fingerprint of hashed-key
    mode.  ``sampler_hash`` is valid only while ``sampler_epoch`` matches
    the sampler's current epoch.
    """

    __slots__ = ("key", "cm_indexes", "bloom_bits", "fingerprint",
                 "sampler_epoch", "sampler_hash")

    def __init__(self, key: bytes, cm_indexes: Tuple[int, ...],
                 bloom_bits: Tuple[int, ...], fingerprint: int):
        self.key = key
        self.cm_indexes = cm_indexes
        self.bloom_bits = bloom_bits
        self.fingerprint = fingerprint
        self.sampler_epoch = -1
        self.sampler_hash = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"KeyDigest({self.key!r}, cm={self.cm_indexes}, "
                f"bloom={self.bloom_bits})")


class DigestTable:
    """Bounded FIFO memo table of :class:`KeyDigest` entries.

    Eviction is FIFO over insertion order (Python dicts preserve it), which
    keeps replays deterministic: the same key stream always produces the
    same hit/miss/eviction sequence.  Correctness never depends on the
    cache — an evicted key is simply recomputed to the identical digest.
    """

    def __init__(self,
                 cm_family: HashFamily, cm_width: int,
                 bloom_family: HashFamily, bloom_bits: int,
                 sampler_seed: int = 0,
                 fingerprint_bits: int = 32,
                 fingerprint_seed: int = 0xF1F1,
                 capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ConfigurationError("digest capacity must be positive")
        if cm_width <= 0 or bloom_bits <= 0:
            raise ConfigurationError("moduli must be positive")
        self._cm_seeds = tuple(cm_family.seeds)
        self._cm_width = cm_width
        self._bloom_seeds = tuple(bloom_family.seeds)
        self._bloom_bits = bloom_bits
        self._sampler_seed = sampler_seed
        self._fp_shift = 64 - fingerprint_bits
        self._fp_seed = fingerprint_seed
        self.capacity = capacity
        self._table: Dict[bytes, KeyDigest] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._table)

    def compute(self, key: bytes) -> KeyDigest:
        """Build a digest without touching the memo table (reference path)."""
        cm = tuple(hash_bytes(key, s) % self._cm_width
                   for s in self._cm_seeds)
        bloom = tuple(hash_bytes(key, s) % self._bloom_bits
                      for s in self._bloom_seeds)
        fp = hash_bytes(key, self._fp_seed) >> self._fp_shift
        return KeyDigest(key, cm, bloom, fp)

    def get(self, key: bytes) -> KeyDigest:
        """Memoized digest of *key* (computes and interns on miss)."""
        d = self._table.get(key)
        if d is not None:
            self.hits += 1
            return d
        self.misses += 1
        d = self.compute(key)
        table = self._table
        if len(table) >= self.capacity:
            # FIFO: drop the oldest interned key.
            del table[next(iter(table))]
            self.evictions += 1
        table[key] = d
        return d

    def get_batch(self, keys: Sequence[bytes]) -> List[KeyDigest]:
        """Digests for a key batch, preserving order (and FIFO eviction)."""
        get = self.get
        return [get(k) for k in keys]

    def sampler_hash(self, digest: KeyDigest, epoch: int) -> int:
        """Epoch-dependent sampler hash, memoized on the digest."""
        if digest.sampler_epoch != epoch:
            digest.sampler_hash = hash_bytes(
                digest.key, self._sampler_seed ^ (epoch * SAMPLER_EPOCH_GAMMA))
            digest.sampler_epoch = epoch
        return digest.sampler_hash

    def invalidate(self) -> None:
        """Drop every interned digest (hash configuration changed)."""
        self._table.clear()

    def stats(self) -> Dict[str, int]:
        """Telemetry snapshot (perf scenarios embed this)."""
        return {"size": len(self._table), "capacity": self.capacity,
                "hits": self.hits, "misses": self.misses,
                "evictions": self.evictions}


def digest_table_for(sketch, bloom, sampler,
                     capacity: Optional[int] = None) -> DigestTable:
    """Wire a :class:`DigestTable` to live sketch/bloom/sampler instances."""
    return DigestTable(
        sketch.hash_family, sketch.width,
        bloom.hash_family, bloom.bits,
        sampler_seed=sampler.hash_seed,
        capacity=capacity if capacity is not None else DEFAULT_CAPACITY,
    )
