"""Probabilistic data-structure substrate.

These are the building blocks of NetCache's query-statistics module
(§4.4.3): seeded hash functions, a Count-Min sketch, a Bloom filter, and a
configurable sampler, plus a SpaceSaving summary used as a software baseline.
"""

from repro.sketch.bloom import BloomFilter
from repro.sketch.countmin import CountMinSketch
from repro.sketch.digest import DigestTable, KeyDigest, digest_table_for
from repro.sketch.hashing import HashFamily, fingerprint, hash_bytes, hash_key
from repro.sketch.sampler import PacketSampler
from repro.sketch.spacesaving import SpaceSaving

__all__ = [
    "BloomFilter",
    "CountMinSketch",
    "DigestTable",
    "HashFamily",
    "KeyDigest",
    "PacketSampler",
    "SpaceSaving",
    "digest_table_for",
    "fingerprint",
    "hash_bytes",
    "hash_key",
]
