"""SpaceSaving heavy-hitter algorithm (Metwally et al. 2005).

This is *not* part of the NetCache data plane; it serves two roles in the
reproduction:

* a software baseline heavy-hitter detector for the ablation benchmark
  (``bench_ablation_hh``), standing in for the server-side monitoring
  component that systems like SwitchKV deploy; and
* a ground-truth-ish reference the tests compare the Count-Min + Bloom
  pipeline against.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.errors import ConfigurationError


class SpaceSaving:
    """SpaceSaving top-k summary over byte-string keys.

    Maintains at most *capacity* (key, count, error) entries.  When a new key
    arrives and the summary is full, the minimum-count entry is evicted and
    the new key inherits its count (recorded as estimation error).
    """

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self._counts: Dict[bytes, int] = {}
        self._errors: Dict[bytes, int] = {}
        self.total = 0

    def update(self, key: bytes, count: int = 1) -> None:
        """Record *count* occurrences of *key*."""
        self.total += count
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        victim_count = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = victim_count + count
        self._errors[key] = victim_count

    def estimate(self, key: bytes) -> int:
        """Upper-bound estimate of the key's count (0 if not tracked)."""
        return self._counts.get(key, 0)

    def guaranteed(self, key: bytes) -> int:
        """Lower-bound (guaranteed) count for the key."""
        return self._counts.get(key, 0) - self._errors.get(key, 0)

    def top(self, k: int) -> List[Tuple[bytes, int]]:
        """Return the *k* highest-count entries as (key, estimate) pairs."""
        items = sorted(self._counts.items(), key=lambda kv: kv[1], reverse=True)
        return items[:k]

    def heavy_hitters(self, threshold: int) -> List[Tuple[bytes, int]]:
        """Entries whose estimate meets *threshold*."""
        return [(k, c) for k, c in self._counts.items() if c >= threshold]

    def reset(self) -> None:
        self._counts.clear()
        self._errors.clear()
        self.total = 0

    def __len__(self) -> int:
        return len(self._counts)
