"""Scalar reference implementations of the sketch structures.

These are the pure-Python, hash-per-access implementations that the
vectorized hot path (:mod:`repro.sketch.digest`, the numpy-backed
:class:`~repro.sketch.countmin.CountMinSketch` and
:class:`~repro.sketch.bloom.BloomFilter`) replaced.  They are retained as
the *executable specification*: the Hypothesis equivalence tests in
``tests/test_prop_hotpath.py`` drive random operation sequences through
both implementations and require bit-for-bit identical observable state.

Do not use these in production paths — they exist so that any future change
to the fast path that would silently alter hash placement, saturation, or
reporting behaviour fails an equivalence test instead of corrupting
committed BENCH baselines and chaos replays.
"""

from __future__ import annotations

from typing import List, Optional

from repro.constants import (
    BLOOM_BITS,
    BLOOM_HASHES,
    CM_COUNTER_BITS,
    CM_SKETCH_ROWS,
    CM_SKETCH_WIDTH,
    HOT_THRESHOLD,
    LOOKUP_TABLE_ENTRIES,
    SAMPLE_RATE,
)
from repro.errors import ConfigurationError
from repro.sketch.hashing import HashFamily
from repro.sketch.sampler import PacketSampler


class ScalarCountMinSketch:
    """Pre-vectorization Count-Min sketch: Python lists, hash per access."""

    def __init__(self, width: int = 64 * 1024, depth: int = 4,
                 counter_bits: int = 16, seed: int = 0):
        if width <= 0 or depth <= 0:
            raise ConfigurationError("width and depth must be positive")
        if not 1 <= counter_bits <= 64:
            raise ConfigurationError("counter_bits must be in [1, 64]")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self._hashes = HashFamily(depth, seed=seed)
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total_updates = 0

    def update(self, key: bytes, count: int = 1) -> int:
        estimate = self.max_count
        for row, idx in enumerate(self._hashes.indexes(key, self.width)):
            cell = min(self.max_count, self._rows[row][idx] + count)
            self._rows[row][idx] = cell
            if cell < estimate:
                estimate = cell
        self.total_updates += count
        return estimate

    def estimate(self, key: bytes) -> int:
        return min(
            self._rows[row][idx]
            for row, idx in enumerate(self._hashes.indexes(key, self.width))
        )

    def reset(self) -> None:
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self.total_updates = 0

    def row_load(self, row: int) -> float:
        cells = self._rows[row]
        return sum(1 for c in cells if c) / len(cells)


class ScalarBloomFilter:
    """Pre-vectorization Bloom filter: bytearrays, hash per access."""

    def __init__(self, bits: int = 256 * 1024, num_hashes: int = 3,
                 seed: int = 1):
        if bits <= 0:
            raise ConfigurationError("bits must be positive")
        if num_hashes <= 0:
            raise ConfigurationError("num_hashes must be positive")
        self.bits = bits
        self.num_hashes = num_hashes
        self._hashes = HashFamily(num_hashes, seed=seed)
        self._arrays = [bytearray(bits) for _ in range(num_hashes)]
        self.inserted = 0

    def add(self, key: bytes) -> bool:
        present = True
        for row in range(self.num_hashes):
            idx = self._hashes.index(row, key, self.bits)
            arr = self._arrays[row]
            if not arr[idx]:
                present = False
                arr[idx] = 1
        if not present:
            self.inserted += 1
        return present

    def contains(self, key: bytes) -> bool:
        return all(
            self._arrays[row][self._hashes.index(row, key, self.bits)]
            for row in range(self.num_hashes)
        )

    def reset(self) -> None:
        for arr in self._arrays:
            for i in range(len(arr)):
                arr[i] = 0
        self.inserted = 0


class ScalarQueryStatistics:
    """Pre-vectorization statistics engine, wired exactly like
    :class:`repro.core.stats.QueryStatistics` (same component seeds, same
    Alg 1 control flow) but built from the scalar structures above: every
    access hashes the key from scratch, resets are O(width) loops.

    It is duck-type compatible with the statistics surface the data plane
    uses (``cache_count``, ``heavy_hitter_count``, ``read_counter``,
    ``reset``, ...), so a :class:`~repro.core.dataplane.NetCacheDataplane`
    can be constructed over it.  The ``hotpath`` perf scenario races it
    against the vectorized engine on the same query stream and requires
    identical reports; the Hypothesis tests require identical state.
    """

    def __init__(self,
                 entries: int = LOOKUP_TABLE_ENTRIES,
                 hot_threshold: int = HOT_THRESHOLD,
                 sample_rate: float = SAMPLE_RATE,
                 seed: int = 0,
                 sampler_mode: str = "random"):
        if hot_threshold <= 0:
            raise ConfigurationError("hot_threshold must be positive")
        self.sampler = PacketSampler(rate=sample_rate, seed=seed ^ 0x5A,
                                     mode=sampler_mode)
        self._counters = [0] * entries
        self._counter_max = (1 << (8 * (CM_COUNTER_BITS // 8))) - 1
        self.sketch = ScalarCountMinSketch(
            width=CM_SKETCH_WIDTH, depth=CM_SKETCH_ROWS,
            counter_bits=CM_COUNTER_BITS, seed=seed)
        self.bloom = ScalarBloomFilter(bits=BLOOM_BITS,
                                       num_hashes=BLOOM_HASHES,
                                       seed=seed ^ 0xB10)
        self.hot_threshold = hot_threshold
        self.reports = 0
        self.resets = 0

    def cache_count(self, key: bytes, key_index: int) -> None:
        if self.sampler.sample(key):
            self._counters[key_index] = min(self._counter_max,
                                            self._counters[key_index] + 1)

    def heavy_hitter_count(self, key: bytes) -> Optional[bytes]:
        if not self.sampler.sample(key):
            return None
        estimate = self.sketch.update(key)
        if estimate < self.hot_threshold:
            return None
        if self.bloom.add(key):
            return None
        self.reports += 1
        return key

    def read_counter(self, key_index: int) -> int:
        return self._counters[key_index]

    def set_hot_threshold(self, threshold: int) -> None:
        if threshold <= 0:
            raise ConfigurationError("hot_threshold must be positive")
        self.hot_threshold = threshold

    def set_sample_rate(self, rate: float) -> None:
        self.sampler.set_rate(rate)

    def reset(self) -> None:
        self._counters = [0] * len(self._counters)
        self.sketch.reset()
        self.bloom.reset()
        self.sampler.advance_epoch()
        self.resets += 1
