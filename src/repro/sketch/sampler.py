"""Query sampler.

NetCache places a sampling component in front of the statistics module
(§4.4.3): only sampled queries update the per-key counters and the Count-Min
sketch.  Sampling acts as a high-pass filter, letting small (16-bit) counters
survive high line rates, and its rate is configurable by the controller.

The switch implementation would sample by comparing a hardware RNG against a
threshold; we use a deterministic counter-based or seeded-pseudorandom
strategy so experiments are reproducible.

The hot path can pass a precomputed (digest-interned) key hash to
:meth:`PacketSampler.sample`, and :meth:`PacketSampler.sample_batch` decides
a whole key batch at once.  Both produce exactly the decisions the scalar
per-key path would: hash mode compares the same hashes against the same
threshold, and random mode draws the underlying RNG once per observed
query, in order.
"""

from __future__ import annotations

import random
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sketch.hashing import hash_bytes

#: epoch-mixing constant (shared with repro.sketch.digest).
_EPOCH_GAMMA = 0x9E37


class PacketSampler:
    """Bernoulli sampler with a controller-configurable rate.

    Two modes are provided:

    * ``mode="random"`` — seeded pseudorandom Bernoulli trials, matching a
      hardware RNG.
    * ``mode="hash"`` — sample based on a hash of (key, epoch).  This is
      deterministic per key per epoch, which makes the statistics module's
      behaviour reproducible under test while remaining unbiased across keys.
    """

    def __init__(self, rate: float = 1.0, seed: int = 7, mode: str = "random"):
        if mode not in ("random", "hash"):
            raise ConfigurationError(f"unknown sampler mode: {mode!r}")
        self.mode = mode
        self._rng = random.Random(seed)
        self._seed = seed
        self._epoch = 0
        self.set_rate(rate)
        self.observed = 0
        self.sampled = 0

    @property
    def hash_seed(self) -> int:
        """Base seed of hash mode (the digest layer derives epoch seeds)."""
        return self._seed

    @property
    def epoch(self) -> int:
        """Current hash-mode epoch (advanced on statistics reset)."""
        return self._epoch

    def set_rate(self, rate: float) -> None:
        """Set the sampling probability (controller API)."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("sample rate must be in [0, 1]")
        self.rate = rate
        # Precompute the 64-bit threshold for hash mode.
        self._threshold = int(rate * float(1 << 64))

    def advance_epoch(self) -> None:
        """Advance the hash-mode epoch (called on statistics reset)."""
        self._epoch += 1

    def key_hash(self, key: bytes) -> int:
        """The hash-mode decision hash of *key* at the current epoch."""
        return hash_bytes(key, self._seed ^ (self._epoch * _EPOCH_GAMMA))

    def sample(self, key: bytes, h: Optional[int] = None) -> bool:
        """Return True if this query should be counted by the statistics.

        *h* may carry a precomputed :meth:`key_hash` (digest fast path);
        it is only consulted in hash mode at fractional rates.
        """
        self.observed += 1
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        if self.rate <= 0.0:
            return False
        if self.mode == "random":
            hit = self._rng.random() < self.rate
        else:
            if h is None:
                h = self.key_hash(key)
            hit = h < self._threshold
        if hit:
            self.sampled += 1
        return hit

    def sample_batch(self, keys: Sequence[bytes],
                     hashes: Optional[np.ndarray] = None) -> np.ndarray:
        """Decide a whole batch; returns a boolean mask aligned with *keys*.

        Identical to calling :meth:`sample` per key in order: random mode
        draws the RNG sequentially, hash mode compares (optionally
        precomputed) per-key hashes against the threshold.
        """
        n = len(keys)
        self.observed += n
        if self.rate >= 1.0:
            self.sampled += n
            return np.ones(n, dtype=bool)
        if self.rate <= 0.0 or n == 0:
            return np.zeros(n, dtype=bool)
        if self.mode == "random":
            rng_random = self._rng.random
            rate = self.rate
            hits = np.fromiter((rng_random() < rate for _ in range(n)),
                               dtype=bool, count=n)
        else:
            if hashes is None:
                key_hash = self.key_hash
                hashes = np.fromiter((key_hash(k) for k in keys),
                                     dtype=np.uint64, count=n)
            hits = hashes < np.uint64(self._threshold)
        self.sampled += int(np.count_nonzero(hits))
        return hits

    def reset_stats(self) -> None:
        """Zero the observed/sampled counters (not the rate)."""
        self.observed = 0
        self.sampled = 0
