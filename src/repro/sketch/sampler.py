"""Query sampler.

NetCache places a sampling component in front of the statistics module
(§4.4.3): only sampled queries update the per-key counters and the Count-Min
sketch.  Sampling acts as a high-pass filter, letting small (16-bit) counters
survive high line rates, and its rate is configurable by the controller.

The switch implementation would sample by comparing a hardware RNG against a
threshold; we use a deterministic counter-based or seeded-pseudorandom
strategy so experiments are reproducible.
"""

from __future__ import annotations

import random

from repro.errors import ConfigurationError
from repro.sketch.hashing import hash_bytes


class PacketSampler:
    """Bernoulli sampler with a controller-configurable rate.

    Two modes are provided:

    * ``mode="random"`` — seeded pseudorandom Bernoulli trials, matching a
      hardware RNG.
    * ``mode="hash"`` — sample based on a hash of (key, epoch).  This is
      deterministic per key per epoch, which makes the statistics module's
      behaviour reproducible under test while remaining unbiased across keys.
    """

    def __init__(self, rate: float = 1.0, seed: int = 7, mode: str = "random"):
        if mode not in ("random", "hash"):
            raise ConfigurationError(f"unknown sampler mode: {mode!r}")
        self.mode = mode
        self._rng = random.Random(seed)
        self._seed = seed
        self._epoch = 0
        self.set_rate(rate)
        self.observed = 0
        self.sampled = 0

    def set_rate(self, rate: float) -> None:
        """Set the sampling probability (controller API)."""
        if not 0.0 <= rate <= 1.0:
            raise ConfigurationError("sample rate must be in [0, 1]")
        self.rate = rate
        # Precompute the 64-bit threshold for hash mode.
        self._threshold = int(rate * float(1 << 64))

    def advance_epoch(self) -> None:
        """Advance the hash-mode epoch (called on statistics reset)."""
        self._epoch += 1

    def sample(self, key: bytes) -> bool:
        """Return True if this query should be counted by the statistics."""
        self.observed += 1
        if self.rate >= 1.0:
            self.sampled += 1
            return True
        if self.rate <= 0.0:
            return False
        if self.mode == "random":
            hit = self._rng.random() < self.rate
        else:
            h = hash_bytes(key, self._seed ^ (self._epoch * 0x9E37))
            hit = h < self._threshold
        if hit:
            self.sampled += 1
        return hit

    def reset_stats(self) -> None:
        """Zero the observed/sampled counters (not the rate)."""
        self.observed = 0
        self.sampled = 0
