"""Count-Min sketch (Cormode & Muthukrishnan 2005).

The NetCache data plane uses a Count-Min sketch with 4 register arrays of
64K 16-bit slots to estimate query frequencies of *uncached* keys (§4.4.3).
Counters saturate at the 16-bit maximum rather than wrapping, mirroring the
switch's saturating-add ALU behaviour.
"""

from __future__ import annotations

from typing import List

from repro.errors import ConfigurationError
from repro.sketch.hashing import HashFamily


class CountMinSketch:
    """A Count-Min sketch with saturating fixed-width counters.

    Parameters
    ----------
    width:
        Number of slots per row (register array length).
    depth:
        Number of rows (independent hash functions / register arrays).
    counter_bits:
        Counter width in bits; counts saturate at ``2**counter_bits - 1``.
    seed:
        Base seed for the hash family.
    """

    def __init__(
        self,
        width: int = 64 * 1024,
        depth: int = 4,
        counter_bits: int = 16,
        seed: int = 0,
    ):
        if width <= 0 or depth <= 0:
            raise ConfigurationError("width and depth must be positive")
        if not 1 <= counter_bits <= 64:
            raise ConfigurationError("counter_bits must be in [1, 64]")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self._hashes = HashFamily(depth, seed=seed)
        self._rows: List[List[int]] = [[0] * width for _ in range(depth)]
        self.total_updates = 0

    # -- updates ---------------------------------------------------------

    def update(self, key: bytes, count: int = 1) -> int:
        """Add *count* to the key's counters; return the new estimate.

        This matches the data-plane behaviour where the increment and the
        hot-key comparison happen in the same pipeline pass.
        """
        estimate = self.max_count
        for row, idxs in enumerate(self._hashes.indexes(key, self.width)):
            cell = min(self.max_count, self._rows[row][idxs] + count)
            self._rows[row][idxs] = cell
            if cell < estimate:
                estimate = cell
        self.total_updates += count
        return estimate

    def estimate(self, key: bytes) -> int:
        """Return the (over-)estimate of the key's count without updating."""
        return min(
            self._rows[row][idx]
            for row, idx in enumerate(self._hashes.indexes(key, self.width))
        )

    def reset(self) -> None:
        """Clear all counters (controller does this every second, §4.4.3)."""
        for row in self._rows:
            for i in range(len(row)):
                row[i] = 0
        self.total_updates = 0

    # -- introspection ----------------------------------------------------

    @property
    def sram_bytes(self) -> int:
        """SRAM consumed by the sketch's register arrays."""
        return self.depth * self.width * self.counter_bits // 8

    def row_load(self, row: int) -> float:
        """Fraction of nonzero slots in *row* (diagnostic)."""
        cells = self._rows[row]
        return sum(1 for c in cells if c) / len(cells)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"counter_bits={self.counter_bits})"
        )
