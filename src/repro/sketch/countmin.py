"""Count-Min sketch (Cormode & Muthukrishnan 2005).

The NetCache data plane uses a Count-Min sketch with 4 register arrays of
64K 16-bit slots to estimate query frequencies of *uncached* keys (§4.4.3).
Counters saturate at the 16-bit maximum rather than wrapping, mirroring the
switch's saturating-add ALU behaviour.

Counter state is numpy-backed with an **epoch-stamped O(1) reset**: instead
of zeroing ``depth x width`` cells every controller round, ``reset()``
bumps a generation counter and a cell is live only while its stamp matches
the current generation.  Observable behaviour — hash placement, saturation,
estimates — is bit-for-bit identical to the scalar reference
(:class:`repro.sketch.reference.ScalarCountMinSketch`); the equivalence is
property-tested.  ``update_batch`` applies a whole index batch with a
handful of numpy calls while returning exactly the estimates a sequential
scalar loop would have produced (duplicate slots within a batch see their
running, not final, counts).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.sketch.hashing import HashFamily


def _counter_dtype(counter_bits: int):
    if counter_bits <= 16:
        return np.uint16
    if counter_bits <= 32:
        return np.uint32
    return np.uint64


class CountMinSketch:
    """A Count-Min sketch with saturating fixed-width counters.

    Parameters
    ----------
    width:
        Number of slots per row (register array length).
    depth:
        Number of rows (independent hash functions / register arrays).
    counter_bits:
        Counter width in bits; counts saturate at ``2**counter_bits - 1``.
    seed:
        Base seed for the hash family.
    """

    def __init__(
        self,
        width: int = 64 * 1024,
        depth: int = 4,
        counter_bits: int = 16,
        seed: int = 0,
    ):
        if width <= 0 or depth <= 0:
            raise ConfigurationError("width and depth must be positive")
        if not 1 <= counter_bits <= 64:
            raise ConfigurationError("counter_bits must be in [1, 64]")
        self.width = width
        self.depth = depth
        self.counter_bits = counter_bits
        self.max_count = (1 << counter_bits) - 1
        self._hashes = HashFamily(depth, seed=seed)
        self._counts = np.zeros((depth, width), dtype=_counter_dtype(counter_bits))
        #: generation stamp per cell; a cell is live iff its stamp equals
        #: the current epoch, so reset() is O(1) in the sketch width.
        self._stamps = np.full((depth, width), -1, dtype=np.int64)
        self._epoch = 0
        self.total_updates = 0

    @property
    def hash_family(self) -> HashFamily:
        """The row hash family (the digest layer precomputes against it)."""
        return self._hashes

    # -- updates ---------------------------------------------------------

    def update(self, key: bytes, count: int = 1) -> int:
        """Add *count* to the key's counters; return the new estimate.

        This matches the data-plane behaviour where the increment and the
        hot-key comparison happen in the same pipeline pass.
        """
        return self.update_at(self._hashes.indexes(key, self.width), count)

    def update_at(self, indexes: Sequence[int], count: int = 1) -> int:
        """Update by precomputed per-row slot indexes (digest fast path)."""
        epoch = self._epoch
        counts = self._counts
        stamps = self._stamps
        max_count = self.max_count
        estimate = max_count
        for row, idx in enumerate(indexes):
            base = int(counts[row, idx]) if stamps[row, idx] == epoch else 0
            cell = base + count
            if cell > max_count:
                cell = max_count
            counts[row, idx] = cell
            stamps[row, idx] = epoch
            if cell < estimate:
                estimate = cell
        self.total_updates += count
        return estimate

    def update_batch(self, idx_matrix: np.ndarray, count: int = 1) -> np.ndarray:
        """Apply one update per row of ``idx_matrix`` (shape ``n x depth``).

        Returns the ``n`` estimates a sequential scalar loop would produce:
        when a batch hits the same cell repeatedly, each occurrence sees the
        counter *as of its own position* (computed from per-slot occurrence
        ranks), not the batch's final value.  Saturation commutes with
        positive increments, so clipping the running totals reproduces the
        sequential saturating adds exactly.
        """
        idx_matrix = np.asarray(idx_matrix)
        n = idx_matrix.shape[0]
        if n == 0:
            return np.zeros(0, dtype=np.int64)
        if count <= 0:
            raise ConfigurationError("count must be positive")
        if self.counter_bits > 62 or count > (1 << 62) // n:
            # Not enough int64 headroom for the vector math: fall back to
            # the (identical) scalar path.
            return np.array([self.update_at(idx_matrix[j], count)
                             for j in range(n)], dtype=np.int64)
        epoch = self._epoch
        max_count = self.max_count
        estimates = np.full(n, max_count, dtype=np.int64)
        positions = np.arange(n, dtype=np.int64)
        scratch = np.empty(n, dtype=np.int64)
        for row in range(self.depth):
            cells = idx_matrix[:, row]
            order = np.argsort(cells, kind="stable")
            sorted_cells = cells[order]
            counts_row = self._counts[row]
            stamps_row = self._stamps[row]
            base = np.where(stamps_row[sorted_cells] == epoch,
                            counts_row[sorted_cells].astype(np.int64), 0)
            new_group = np.empty(n, dtype=bool)
            new_group[0] = True
            np.not_equal(sorted_cells[1:], sorted_cells[:-1],
                         out=new_group[1:])
            starts = np.flatnonzero(new_group)
            sizes = np.diff(np.append(starts, n))
            # occurrence rank within each slot group, 1-based
            rank = positions - np.repeat(starts, sizes) + 1
            running = np.minimum(max_count, base + rank * count)
            scratch[order] = running
            np.minimum(estimates, scratch, out=estimates)
            last = starts + sizes - 1
            counts_row[sorted_cells[last]] = running[last]
            stamps_row[sorted_cells[last]] = epoch
        self.total_updates += n * count
        return estimates

    def estimate(self, key: bytes) -> int:
        """Return the (over-)estimate of the key's count without updating."""
        return self.estimate_at(self._hashes.indexes(key, self.width))

    def estimate_at(self, indexes: Sequence[int]) -> int:
        """Estimate by precomputed per-row slot indexes (digest fast path)."""
        epoch = self._epoch
        counts = self._counts
        stamps = self._stamps
        return min(
            int(counts[row, idx]) if stamps[row, idx] == epoch else 0
            for row, idx in enumerate(indexes)
        )

    def reset(self) -> None:
        """Clear all counters (controller does this every second, §4.4.3).

        O(1): bumps the generation stamp instead of zeroing the arrays.
        """
        self._epoch += 1
        self.total_updates = 0

    # -- introspection ----------------------------------------------------

    @property
    def sram_bytes(self) -> int:
        """SRAM consumed by the sketch's register arrays."""
        return self.depth * self.width * self.counter_bits // 8

    def row_load(self, row: int) -> float:
        """Fraction of nonzero slots in *row* (diagnostic)."""
        live = (self._stamps[row] == self._epoch) & (self._counts[row] != 0)
        return int(np.count_nonzero(live)) / self.width

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CountMinSketch(width={self.width}, depth={self.depth}, "
            f"counter_bits={self.counter_bits})"
        )
