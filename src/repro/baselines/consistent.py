"""Consistent hashing with virtual nodes (§8 "Load balancing").

The related-work baseline: "Traditional methods use consistent hashing
[Karger et al.] and virtual nodes [Dabek et al.] to mitigate load
imbalance, but these solutions fall short when dealing with workload
changes."  This module implements the ring properly — sorted virtual-node
tokens, binary-search lookup, replica walking — so the claim can be
measured: virtual nodes even out *key-count* imbalance across servers, but
they cannot split the load of a single hot key, so Zipf skew still
concentrates on whoever owns the head.

Doubles as an alternative partitioner for the cluster builder (it exposes
the same ``server_for``/``partition_of`` surface as
:class:`~repro.kvstore.partition.HashPartitioner`).
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence

import numpy as np

from repro.errors import ConfigurationError, PartitionError
from repro.sketch.hashing import hash_bytes

RING_SEED = 0xC0F5


class ConsistentHashRing:
    """A hash ring with per-server virtual nodes."""

    def __init__(self, server_ids: Sequence[int], virtual_nodes: int = 64,
                 seed: int = RING_SEED):
        if not server_ids:
            raise ConfigurationError("need at least one server")
        if len(set(server_ids)) != len(server_ids):
            raise ConfigurationError("server ids must be unique")
        if virtual_nodes <= 0:
            raise ConfigurationError("virtual_nodes must be positive")
        self.server_ids: List[int] = list(server_ids)
        self.virtual_nodes = virtual_nodes
        self.seed = seed
        self._index_of: Dict[int, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }
        tokens: List[tuple] = []
        for sid in self.server_ids:
            for v in range(virtual_nodes):
                token = hash_bytes(f"vn:{sid}:{v}".encode(), seed)
                tokens.append((token, sid))
        tokens.sort()
        self._tokens = [t for t, _ in tokens]
        self._owners = [s for _, s in tokens]

    @property
    def num_partitions(self) -> int:
        return len(self.server_ids)

    # -- lookup -----------------------------------------------------------------

    def server_for(self, key: bytes) -> int:
        """First virtual node clockwise from the key's ring position."""
        point = hash_bytes(key, self.seed ^ 0x5A5A)
        idx = bisect.bisect_right(self._tokens, point)
        if idx == len(self._tokens):
            idx = 0  # wrap around the ring
        return self._owners[idx]

    def partition_of(self, key: bytes) -> int:
        return self._index_of[self.server_for(key)]

    def owns(self, server_id: int, key: bytes) -> bool:
        if server_id not in self._index_of:
            raise PartitionError(f"{server_id} is not a ring member")
        return self.server_for(key) == server_id

    def partition_index(self, server_id: int) -> int:
        idx = self._index_of.get(server_id)
        if idx is None:
            raise PartitionError(f"{server_id} is not a ring member")
        return idx

    def preference_list(self, key: bytes, n: int) -> List[int]:
        """The *n* distinct servers clockwise from the key (replication)."""
        if n > len(self.server_ids):
            raise ConfigurationError("n exceeds ring membership")
        point = hash_bytes(key, self.seed ^ 0x5A5A)
        idx = bisect.bisect_right(self._tokens, point)
        out: List[int] = []
        for step in range(len(self._tokens)):
            owner = self._owners[(idx + step) % len(self._tokens)]
            if owner not in out:
                out.append(owner)
                if len(out) == n:
                    break
        return out

    # -- membership changes (the ring's selling point) ---------------------------

    def arc_share(self, server_id: int) -> float:
        """Fraction of the ring the server owns (ideal: 1/N)."""
        if server_id not in self._index_of:
            raise PartitionError(f"{server_id} is not a ring member")
        total = 0
        ring = 1 << 64
        for i, owner in enumerate(self._owners):
            if owner != server_id:
                continue
            lo = self._tokens[i - 1] if i > 0 else self._tokens[-1] - ring
            total += self._tokens[i] - lo
        return total / ring


def moved_keys_on_join(keys: Sequence[bytes], server_ids: Sequence[int],
                       new_server: int, virtual_nodes: int = 64) -> float:
    """Fraction of keys that change owner when *new_server* joins.

    Consistent hashing's defining guarantee: ~1/(N+1), vs ~N/(N+1) for
    modulo hashing.
    """
    before = ConsistentHashRing(server_ids, virtual_nodes)
    after = ConsistentHashRing(list(server_ids) + [new_server],
                               virtual_nodes)
    moved = sum(1 for k in keys if before.server_for(k) != after.server_for(k))
    return moved / max(1, len(keys))


def ring_load_vector(probs: np.ndarray, keyspace, ring: ConsistentHashRing
                     ) -> np.ndarray:
    """Per-server query-load fractions under ring placement."""
    loads = np.zeros(ring.num_partitions)
    for item in np.flatnonzero(probs):
        loads[ring.partition_of(keyspace.key(int(item)))] += probs[item]
    return loads
