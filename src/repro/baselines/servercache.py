"""Server-based caching-layer baseline (Figure 1's middle column).

SwitchKV-style designs put a DRAM cache *node* in front of the storage
layer.  That works when storage is flash (cache is orders of magnitude
faster) and stops working when storage is also in memory: the cache node's
throughput T' is comparable to a storage node's T, so absorbing the skewed
head of the distribution saturates the cache nodes themselves (§2).

This baseline makes that argument quantitative: an equilibrium model of a
rack fronted by ``num_cache_nodes`` in-memory cache nodes that absorb all
queries to the hottest items, each limited to ``cache_node_rate``.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.ratesim import RateSimConfig, fast_partition_vector, top_k_mask


@dataclasses.dataclass(frozen=True)
class ServerCacheConfig:
    """An in-memory caching layer of M server-class nodes."""

    num_cache_nodes: int = 1
    cache_node_rate: float = 10e6   # same class of box as a storage server
    cache_items: int = 10_000

    def __post_init__(self):
        if self.num_cache_nodes <= 0 or self.cache_node_rate <= 0:
            raise ConfigurationError("cache layer must have capacity")


@dataclasses.dataclass
class ServerCacheResult:
    throughput: float
    cache_layer_throughput: float
    storage_throughput: float
    binding: str  # "cache-layer" or "storage"


def simulate_server_cache(read_probs: np.ndarray,
                          storage: RateSimConfig,
                          cache: ServerCacheConfig) -> ServerCacheResult:
    """Saturated throughput with a server-based look-aside cache layer.

    Hot items are replicated on all cache nodes (the layer's aggregate rate
    is M * T'); the remaining load hash-partitions over storage servers.
    """
    mask = top_k_mask(read_probs, cache.cache_items)
    hit_fraction = float(read_probs[mask].sum())
    miss = np.where(mask, 0.0, read_probs)
    part = fast_partition_vector(len(read_probs), storage.num_servers,
                                 storage.partition_seed)
    per_server = np.bincount(part, weights=miss,
                             minlength=storage.num_servers)

    bounds = {}
    if per_server.max() > 0:
        bounds["storage"] = storage.server_rate / per_server.max()
    if hit_fraction > 0:
        layer_rate = cache.num_cache_nodes * cache.cache_node_rate
        bounds["cache-layer"] = layer_rate / hit_fraction
    if not bounds:
        raise ConfigurationError("no traffic")
    binding = min(bounds, key=bounds.get)
    rate = bounds[binding]
    return ServerCacheResult(
        throughput=rate,
        cache_layer_throughput=rate * hit_fraction,
        storage_throughput=rate * (1 - hit_fraction),
        binding=binding,
    )
