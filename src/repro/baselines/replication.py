"""Selective-replication baseline (§1).

The alternative to caching the paper dismisses: replicate hot items onto R
additional storage nodes and spread their queries.  It consumes server
capacity for replicas and still leaves a bottleneck once the head of the
distribution outruns the replication factor.  The equilibrium model lets the
ablation benchmark quantify the comparison on the same workloads.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.sim.ratesim import RateSimConfig, fast_partition_vector, top_k_mask


@dataclasses.dataclass(frozen=True)
class ReplicationConfig:
    """Replicate the hottest *replicated_items* onto *replicas* servers."""

    replicated_items: int = 10_000
    replicas: int = 3

    def __post_init__(self):
        if self.replicas < 1:
            raise ConfigurationError("replicas must be >= 1")
        if self.replicated_items < 0:
            raise ConfigurationError("replicated_items must be >= 0")


def simulate_replication(read_probs: np.ndarray,
                         storage: RateSimConfig,
                         config: ReplicationConfig) -> float:
    """Saturated throughput with selective replication.

    Each replicated item's load splits evenly across ``replicas`` servers
    chosen uniformly (primary + R-1 replicas); non-replicated items stay
    hash-partitioned.  Returns total queries/second at saturation.
    """
    n = len(read_probs)
    part = fast_partition_vector(n, storage.num_servers,
                                 storage.partition_seed)
    mask = top_k_mask(read_probs, config.replicated_items)
    per_server = np.bincount(part, weights=np.where(mask, 0.0, read_probs),
                             minlength=storage.num_servers)
    # Replica placement: deterministic stride from the primary.
    replicated = np.flatnonzero(mask)
    share = read_probs[replicated] / config.replicas
    for r in range(config.replicas):
        targets = (part[replicated] + r * 17) % storage.num_servers
        per_server += np.bincount(targets, weights=share,
                                  minlength=storage.num_servers)
    if per_server.max() <= 0:
        raise ConfigurationError("no traffic")
    return storage.server_rate / per_server.max()
