"""NoCache baseline (§7.3).

The paper's primary comparison point: the same rack with the switch cache
disabled — a plain L2/L3 ToR in front of hash-partitioned servers.  The
cluster builder already supports ``enable_cache=False``; this module wraps it
with the baseline's name and adds the closed-form NoCache throughput used by
the rate simulator sweeps.
"""

from __future__ import annotations

import numpy as np

from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.ratesim import RateSimConfig, RateSimResult, simulate


def make_nocache_cluster(**overrides) -> Cluster:
    """A rack identical to NetCache's but with a plain ToR switch."""
    overrides["enable_cache"] = False
    return Cluster(ClusterConfig(**overrides))


def nocache_equilibrium(read_probs: np.ndarray, config: RateSimConfig,
                        write_probs=None) -> RateSimResult:
    """Saturated NoCache throughput (empty cache mask)."""
    return simulate(read_probs, None, config, write_probs=write_probs)
