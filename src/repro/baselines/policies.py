"""Cache-update policy ablation (§4.3 "Cache Update").

The paper argues that classical per-query policies (LRU/LFU) are unusable on
a switch because the control plane can install only ~10K table entries per
second, while the data plane sees ~10^9 queries per second; NetCache instead
inserts a key only when the heavy-hitter detector says it is hot.

These policy models make that argument measurable: each policy processes a
query stream under a *table-update budget per interval*; updates beyond the
budget are dropped (the switch driver simply cannot apply them), and the
resulting hit ratio is what the ablation benchmark compares.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError


class CachePolicy:
    """Interface: feed keys, observe hits, count table updates."""

    name = "abstract"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self.updates_attempted = 0
        self.updates_applied = 0

    def access(self, key: bytes, budget: "UpdateBudget") -> bool:
        raise NotImplementedError

    def end_interval(self, budget: "UpdateBudget") -> None:
        """Hook for policies that batch updates per interval."""

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class UpdateBudget:
    """Table-entry updates available per interval (switch driver limit)."""

    def __init__(self, per_interval: int):
        if per_interval < 0:
            raise ConfigurationError("budget must be non-negative")
        self.per_interval = per_interval
        self.remaining = per_interval
        self.spent = 0
        self.denied = 0

    def take(self, n: int = 1) -> bool:
        if self.remaining >= n:
            self.remaining -= n
            self.spent += n
            return True
        self.denied += n
        return False

    def refill(self) -> None:
        self.remaining = self.per_interval


class LruPolicy(CachePolicy):
    """Insert on every miss, evict least-recently-used."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._cache: "OrderedDict[bytes, None]" = OrderedDict()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        if key in self._cache:
            self.hits += 1
            self._cache.move_to_end(key)
            return True
        self.misses += 1
        cost = 2 if len(self._cache) >= self.capacity else 1
        self.updates_attempted += cost
        if budget.take(cost):
            self.updates_applied += cost
            if len(self._cache) >= self.capacity:
                self._cache.popitem(last=False)
            self._cache[key] = None
        return False


class LfuPolicy(CachePolicy):
    """Insert on miss only if the key's frequency beats the coldest entry."""

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._cache: Dict[bytes, int] = {}
        self._freq: Counter = Counter()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        self._freq[key] += 1
        if key in self._cache:
            self.hits += 1
            self._cache[key] = self._freq[key]
            return True
        self.misses += 1
        if len(self._cache) < self.capacity:
            self.updates_attempted += 1
            if budget.take(1):
                self.updates_applied += 1
                self._cache[key] = self._freq[key]
            return False
        victim = min(self._cache, key=self._cache.__getitem__)
        if self._freq[key] > self._cache[victim]:
            self.updates_attempted += 2
            if budget.take(2):
                self.updates_applied += 2
                del self._cache[victim]
                self._cache[key] = self._freq[key]
        return False


class ThresholdPolicy(CachePolicy):
    """NetCache-style: count misses, batch-insert hot keys at interval end."""

    name = "netcache-threshold"

    def __init__(self, capacity: int, threshold: int = 8):
        super().__init__(capacity)
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.threshold = threshold
        self._cache: Dict[bytes, int] = {}
        self._miss_counts: Counter = Counter()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        if key in self._cache:
            self.hits += 1
            self._cache[key] += 1
            return True
        self.misses += 1
        self._miss_counts[key] += 1
        return False

    def end_interval(self, budget: UpdateBudget) -> None:
        hot = [(c, k) for k, c in self._miss_counts.items()
               if c >= self.threshold]
        hot.sort(reverse=True)
        for count, key in hot:
            if len(self._cache) < self.capacity:
                self.updates_attempted += 1
                if budget.take(1):
                    self.updates_applied += 1
                    self._cache[key] = count
                continue
            victim = min(self._cache, key=self._cache.__getitem__)
            if count <= self._cache[victim]:
                break  # remaining candidates are colder still
            self.updates_attempted += 2
            if budget.take(2):
                self.updates_applied += 2
                del self._cache[victim]
                self._cache[key] = count
        # Counters reset each interval, like the statistics module.
        self._miss_counts.clear()
        for k in self._cache:
            self._cache[k] = 0


def run_policy(policy: CachePolicy, stream: Iterable[bytes],
               queries_per_interval: int,
               updates_per_interval: int) -> Tuple[float, int]:
    """Feed *stream* through *policy* with interval-based update budgets.

    Returns (hit_ratio, updates_applied).
    """
    if queries_per_interval <= 0:
        raise ConfigurationError("queries_per_interval must be positive")
    budget = UpdateBudget(updates_per_interval)
    in_interval = 0
    for key in stream:
        policy.access(key, budget)
        in_interval += 1
        if in_interval >= queries_per_interval:
            policy.end_interval(budget)
            budget.refill()
            in_interval = 0
    policy.end_interval(budget)
    return policy.hit_ratio, policy.updates_applied


def compare_policies(stream_factory, capacity: int,
                     queries_per_interval: int,
                     updates_per_interval: int,
                     threshold: int = 8) -> List[Tuple[str, float, int]]:
    """Run all three policies on identical streams; returns
    (name, hit_ratio, updates) rows."""
    rows = []
    for policy in (LruPolicy(capacity), LfuPolicy(capacity),
                   ThresholdPolicy(capacity, threshold=threshold)):
        hit_ratio, updates = run_policy(policy, stream_factory(),
                                        queries_per_interval,
                                        updates_per_interval)
        rows.append((policy.name, hit_ratio, updates))
    return rows
