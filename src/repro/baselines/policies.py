"""Cache-update policy ablation (§4.3 "Cache Update").

The paper argues that classical per-query policies (LRU/LFU) are unusable on
a switch because the control plane can install only ~10K table entries per
second, while the data plane sees ~10^9 queries per second; NetCache instead
inserts a key only when the heavy-hitter detector says it is hot.

These policy models make that argument measurable: each policy processes a
query stream under a *table-update budget per interval*; updates beyond the
budget are dropped (the switch driver simply cannot apply them), and the
resulting hit ratio is what the ablation benchmark compares.

Since the cache-geometry seam, the shared contract lives in
:mod:`repro.core.geometry`: every policy here is an
:class:`~repro.core.geometry.AdmissionPolicy` implementing only the stream
surface (they never drive the live controller's victim sampling), and
:class:`UpdateBudget`/:func:`run_policy` are re-exported from there so the
ablation benchmark and the geometry tournament run one code path.
"""

from __future__ import annotations

from collections import Counter, OrderedDict
from typing import Dict, List, Tuple

from repro.core.geometry import (  # noqa: F401  (re-exported contract)
    AdmissionPolicy,
    SampleEvictPolicy,
    UpdateBudget,
    run_policy,
)
from repro.errors import ConfigurationError


class CachePolicy(AdmissionPolicy):
    """Stream-surface policy base: feed keys, observe hits, count updates.

    Degenerate :class:`~repro.core.geometry.AdmissionPolicy`: the control
    surface stays inert (``pick_victim`` returns None — these policies do
    their own eviction inline) and the capacity must be a real cache size.
    """

    name = "abstract"

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ConfigurationError("capacity must be positive")
        super().__init__(capacity)


class LruPolicy(CachePolicy):
    """Insert on every miss, evict least-recently-used."""

    name = "lru"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._cache: "OrderedDict[bytes, None]" = OrderedDict()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        if key in self._cache:
            self.hits += 1
            self._cache.move_to_end(key)
            return True
        self.misses += 1
        cost = 2 if len(self._cache) >= self.capacity else 1
        self.updates_attempted += cost
        if budget.take(cost):
            self.updates_applied += cost
            if len(self._cache) >= self.capacity:
                self._cache.popitem(last=False)
            self._cache[key] = None
        return False


class LfuPolicy(CachePolicy):
    """Insert on miss only if the key's frequency beats the coldest entry."""

    name = "lfu"

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._cache: Dict[bytes, int] = {}
        self._freq: Counter = Counter()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        self._freq[key] += 1
        if key in self._cache:
            self.hits += 1
            self._cache[key] = self._freq[key]
            return True
        self.misses += 1
        if len(self._cache) < self.capacity:
            self.updates_attempted += 1
            if budget.take(1):
                self.updates_applied += 1
                self._cache[key] = self._freq[key]
            return False
        victim = min(self._cache, key=self._cache.__getitem__)
        if self._freq[key] > self._cache[victim]:
            self.updates_attempted += 2
            if budget.take(2):
                self.updates_applied += 2
                del self._cache[victim]
                self._cache[key] = self._freq[key]
        return False


class ThresholdPolicy(CachePolicy):
    """NetCache-style: count misses, batch-insert hot keys at interval end."""

    name = "netcache-threshold"

    def __init__(self, capacity: int, threshold: int = 8):
        super().__init__(capacity)
        if threshold <= 0:
            raise ConfigurationError("threshold must be positive")
        self.threshold = threshold
        self._cache: Dict[bytes, int] = {}
        self._miss_counts: Counter = Counter()

    def access(self, key: bytes, budget: UpdateBudget) -> bool:
        if key in self._cache:
            self.hits += 1
            self._cache[key] += 1
            return True
        self.misses += 1
        self._miss_counts[key] += 1
        return False

    def end_interval(self, budget: UpdateBudget) -> None:
        hot = [(c, k) for k, c in self._miss_counts.items()
               if c >= self.threshold]
        hot.sort(reverse=True)
        for count, key in hot:
            if len(self._cache) < self.capacity:
                self.updates_attempted += 1
                if budget.take(1):
                    self.updates_applied += 1
                    self._cache[key] = count
                continue
            victim = min(self._cache, key=self._cache.__getitem__)
            if count <= self._cache[victim]:
                break  # remaining candidates are colder still
            self.updates_attempted += 2
            if budget.take(2):
                self.updates_applied += 2
                del self._cache[victim]
                self._cache[key] = count
        # Counters reset each interval, like the statistics module.
        self._miss_counts.clear()
        for k in self._cache:
            self._cache[k] = 0


def compare_policies(stream_factory, capacity: int,
                     queries_per_interval: int,
                     updates_per_interval: int,
                     threshold: int = 8) -> List[Tuple[str, float, int]]:
    """Run all three policies on identical streams; returns
    (name, hit_ratio, updates) rows."""
    rows = []
    for policy in (LruPolicy(capacity), LfuPolicy(capacity),
                   ThresholdPolicy(capacity, threshold=threshold)):
        hit_ratio, updates = run_policy(policy, stream_factory(),
                                        queries_per_interval,
                                        updates_per_interval)
        rows.append((policy.name, hit_ratio, updates))
    return rows
