"""Baselines and ablations: NoCache, server-based cache layer, selective
replication, and cache-update policies under an update-rate budget."""

from repro.baselines.consistent import (
    ConsistentHashRing,
    moved_keys_on_join,
    ring_load_vector,
)
from repro.baselines.nocache import make_nocache_cluster, nocache_equilibrium
from repro.baselines.policies import (
    CachePolicy,
    LfuPolicy,
    LruPolicy,
    ThresholdPolicy,
    UpdateBudget,
    compare_policies,
    run_policy,
)
from repro.baselines.replication import ReplicationConfig, simulate_replication
from repro.baselines.servercache import (
    ServerCacheConfig,
    ServerCacheResult,
    simulate_server_cache,
)

__all__ = [
    "CachePolicy",
    "ConsistentHashRing",
    "moved_keys_on_join",
    "ring_load_vector",
    "LfuPolicy",
    "LruPolicy",
    "ReplicationConfig",
    "ServerCacheConfig",
    "ServerCacheResult",
    "ThresholdPolicy",
    "UpdateBudget",
    "compare_policies",
    "make_nocache_cluster",
    "nocache_equilibrium",
    "run_policy",
    "simulate_replication",
    "simulate_server_cache",
]
