"""Rate-equilibrium simulator: saturated system throughput.

This reproduces the paper's *server rotation* methodology (§7.1) in closed
form: find the bottleneck partition, scale the client load so the bottleneck
runs exactly at its capacity, and add up what every partition and the switch
cache serve at that operating point.  Because the key-value cluster is
shared-nothing and the microbenchmark shows the switch is never the
bottleneck, this is exactly what the paper measures by physically rotating
two servers through 128 partitions.

Write queries are modelled with an invalidation window: a write to a cached
key makes the entry invalid for ``invalidation_window`` seconds (server
queueing + processing + the data-plane update round trip), during which reads
on that key fall through to the server.  Validity therefore depends on the
absolute query rate, which itself depends on validity — a fixed point the
simulator iterates to convergence.  Writes to cached keys also charge the
owning server a coherence surcharge (the shim's update/ack/blocking work).
"""

from __future__ import annotations

import dataclasses
import functools
from typing import Optional, Sequence

import numpy as np

from repro.constants import PIPE_RATE, SERVER_RATE, SWITCH_RATE
from repro.errors import ConfigurationError
from repro.kvstore.partition import HashPartitioner
from repro.client.zipf import KeySpace


@functools.lru_cache(maxsize=32)
def partition_vector(num_keys: int, num_servers: int,
                     seed: int = 0x5EED) -> np.ndarray:
    """item id -> partition index, using the real hash partitioner.

    Cached because hashing 10^5 keys in pure Python is the expensive part of
    a sweep that calls the rate simulator dozens of times.  For large key
    spaces prefer :func:`fast_partition_vector`.
    """
    keyspace = KeySpace(num_keys)
    partitioner = HashPartitioner(list(range(num_servers)), seed=seed)
    return np.fromiter(
        (partitioner.partition_of(keyspace.key(i)) for i in range(num_keys)),
        dtype=np.int64, count=num_keys,
    )


@functools.lru_cache(maxsize=32)
def fast_partition_vector(num_keys: int, num_servers: int,
                          seed: int = 0x5EED) -> np.ndarray:
    """Vectorized uniform hash partition (splitmix64 over item ids).

    Statistically equivalent to :func:`partition_vector` (any uniform hash
    yields the same load distribution); used by the large-keyspace static
    experiments where hashing every key byte string in Python would dominate
    the runtime.
    """
    mask64 = np.uint64(0xFFFFFFFFFFFFFFFF)
    x = np.arange(num_keys, dtype=np.uint64)
    x = (x + np.uint64((seed * 0x9E3779B97F4A7C15) & 0xFFFFFFFFFFFFFFFF)) & mask64
    x = (x + np.uint64(0x9E3779B97F4A7C15)) & mask64
    with np.errstate(over="ignore"):
        x = ((x ^ (x >> np.uint64(30))) * np.uint64(0xBF58476D1CE4E5B9)) & mask64
        x = ((x ^ (x >> np.uint64(27))) * np.uint64(0x94D049BB133111EB)) & mask64
    x = x ^ (x >> np.uint64(31))
    return (x % np.uint64(num_servers)).astype(np.int64)


@functools.lru_cache(maxsize=32)
def partition_vector_for_servers(num_keys: int, server_ids: tuple,
                                 seed: int = 0x5EED) -> np.ndarray:
    """item id -> partition index for a *concrete* server-id list.

    The partition *index* depends only on the key hash, so this produces the
    same vector as :func:`partition_vector` for equal-length id lists — but
    the steady-state handoff keys its cache on the cluster's actual id tuple
    so position ``i`` of ``per_server_load`` is unambiguously
    ``server_ids[i]``, matching ``HashPartitioner.server_for`` exactly
    (unlike :func:`fast_partition_vector`, which is only statistically
    equivalent).
    """
    keyspace = KeySpace(num_keys)
    partitioner = HashPartitioner(list(server_ids), seed=seed)
    return np.fromiter(
        (partitioner.partition_of(keyspace.key(i)) for i in range(num_keys)),
        dtype=np.int64, count=num_keys,
    )


class CacheContentsMask:
    """Contents-version-keyed cache of the cached-items mask.

    Rebuilding the per-item boolean mask from the switch's key list is the
    expensive part of re-running the equilibrium model every step; the
    dataplane bumps ``contents_version`` on every install/evict, so the mask
    is reused until the cache actually changes.  Shared by the hybrid
    emulation and the simcore fast-forward.
    """

    def __init__(self, switch, keyspace: KeySpace):
        self._switch = switch
        self._keyspace = keyspace
        self._mask: Optional[np.ndarray] = None
        self._version = -1

    @property
    def version(self) -> int:
        return self._switch.dataplane.contents_version

    def mask(self) -> np.ndarray:
        dataplane = self._switch.dataplane
        if self._mask is None or self._version != dataplane.contents_version:
            self._mask = mask_from_keys(self._switch.cached_keys(),
                                        self._keyspace)
            self._version = dataplane.contents_version
        return self._mask


@dataclasses.dataclass(frozen=True)
class RateSimConfig:
    """Inputs to one equilibrium computation."""

    num_servers: int = 128
    server_rate: float = SERVER_RATE
    switch_rate: float = SWITCH_RATE
    pipe_rate: float = PIPE_RATE
    #: egress pipes facing the storage servers.
    num_pipes: int = 2
    #: egress pipes facing the clients; every reply (cache hit or server
    #: reply) exits through one of them, which is what caps the measured
    #: system at ~2 BQPS in Fig 10(c).
    num_upstream_pipes: int = 2
    write_ratio: float = 0.0
    #: fixed part of the invalidation window (propagation, update RTT).
    invalidation_window: float = 10e-6
    #: queueing/processing part, in units of server service times: a write
    #: keeps the entry invalid while it waits in and is served by the
    #: (loaded) owning server, which scales with 1/server_rate.
    invalidation_service_factor: float = 64.0
    #: extra server work per cached-key write, as a fraction of one query
    #: (shim update + ack handling + write blocking).
    coherence_overhead: float = 0.3
    partition_seed: int = 0x5EED
    #: use the byte-level hash partitioner (matches the DES cluster exactly)
    #: instead of the vectorized equivalent; only worth it for small
    #: keyspaces in cross-validation tests.
    exact_partition: bool = False

    def __post_init__(self):
        if self.num_servers <= 0:
            raise ConfigurationError("num_servers must be positive")
        if not 0.0 <= self.write_ratio <= 1.0:
            raise ConfigurationError("write_ratio must be in [0, 1]")


@dataclasses.dataclass
class RateSimResult:
    """Equilibrium operating point."""

    throughput: float
    cache_throughput: float
    server_throughput: float
    per_server_load: np.ndarray  # queries/second at saturation
    bottleneck: int
    hit_ratio: float
    #: which constraint bound the system: "server", "pipe", or "switch".
    binding: str

    @property
    def per_server_normalized(self) -> np.ndarray:
        peak = self.per_server_load.max()
        return self.per_server_load / peak if peak > 0 else self.per_server_load


def simulate(read_probs: np.ndarray,
             cached_mask: Optional[np.ndarray],
             config: RateSimConfig,
             write_probs: Optional[np.ndarray] = None,
             part_vector: Optional[np.ndarray] = None) -> RateSimResult:
    """Compute the saturated throughput for one workload + cache contents.

    Parameters
    ----------
    read_probs:
        Per-item probability of a query being a read of that item,
        conditioned on the query being a read (sums to 1).
    cached_mask:
        Boolean per-item mask of cached items (None = no cache).
    config:
        Cluster capacities and the write model.
    write_probs:
        Per-item write distribution (required if ``write_ratio > 0``).
    part_vector:
        Explicit item -> partition-index vector (overrides the internal
        partitioners; use :func:`partition_vector_for_servers` to match a
        concrete DES cluster).
    """
    n_items = len(read_probs)
    w = config.write_ratio
    if w > 0 and write_probs is None:
        raise ConfigurationError("write_ratio > 0 requires write_probs")
    if cached_mask is None:
        cached_mask = np.zeros(n_items, dtype=bool)

    if part_vector is not None:
        part = np.asarray(part_vector, dtype=np.int64)
        if len(part) != n_items:
            raise ConfigurationError("part_vector length != len(read_probs)")
    elif config.exact_partition:
        part = partition_vector(n_items, config.num_servers,
                                config.partition_seed)
    else:
        part = fast_partition_vector(n_items, config.num_servers,
                                     config.partition_seed)
    read_rate = (1.0 - w) * read_probs          # per unit client rate
    write_rate = (w * write_probs) if w > 0 else np.zeros(n_items)

    # Fixed point on validity of cached entries.
    validity = np.ones(n_items)
    rate = 0.0
    for _ in range(50):
        # Per-item traffic that reaches servers, per unit client rate.
        hit_rate = np.where(cached_mask, read_rate * validity, 0.0)
        miss_read = read_rate - hit_rate
        server_write = write_rate * np.where(cached_mask,
                                             1.0 + config.coherence_overhead,
                                             1.0)
        server_traffic = miss_read + server_write
        per_server = np.bincount(part, weights=server_traffic,
                                 minlength=config.num_servers)
        max_load = per_server.max()

        # Constraints: every server at most server_rate; every downstream
        # egress pipe carries its servers' cached-value hits plus the
        # queries forwarded to those servers (§4.4.4); every reply exits
        # through an upstream pipe; the chip forwards at most switch_rate.
        bounds = {}
        if max_load > 0:
            bounds["server"] = config.server_rate / max_load
        total = hit_rate.sum() + server_traffic.sum()
        if total > 0:
            bounds["switch"] = config.switch_rate / total
        pipe_load = _max_pipe_load(hit_rate, server_traffic, part, config)
        if pipe_load > 0:
            bounds["pipe"] = config.pipe_rate / pipe_load
        replies = read_rate.sum() + write_rate.sum()
        if replies > 0 and config.num_upstream_pipes > 0:
            bounds["upstream"] = (config.num_upstream_pipes
                                  * config.pipe_rate / replies)
        if not bounds:
            raise ConfigurationError("workload has no traffic")
        binding = min(bounds, key=bounds.get)
        new_rate = bounds[binding]

        # Update validity from absolute write rates.
        if w > 0:
            window = (config.invalidation_window +
                      config.invalidation_service_factor / config.server_rate)
            inv = new_rate * write_rate * window
            new_validity = 1.0 / (1.0 + inv)
        else:
            new_validity = validity
        if abs(new_rate - rate) <= 1e-9 * max(1.0, new_rate):
            rate, validity = new_rate, new_validity
            break
        rate, validity = new_rate, new_validity

    hit_rate = np.where(cached_mask, read_rate * validity, 0.0)
    miss_read = read_rate - hit_rate
    server_write = write_rate * np.where(cached_mask,
                                         1.0 + config.coherence_overhead, 1.0)
    server_traffic = miss_read + server_write
    per_server = np.bincount(part, weights=server_traffic,
                             minlength=config.num_servers) * rate
    cache_tput = float(hit_rate.sum() * rate)
    # Served throughput counts queries, not the coherence surcharge.
    served_by_servers = float((miss_read + write_rate).sum() * rate)
    total = cache_tput + served_by_servers
    return RateSimResult(
        throughput=total,
        cache_throughput=cache_tput,
        server_throughput=served_by_servers,
        per_server_load=per_server,
        bottleneck=int(per_server.argmax()),
        hit_ratio=cache_tput / total if total else 0.0,
        binding=binding,
    )


def _max_pipe_load(hit_rate: np.ndarray, server_traffic: np.ndarray,
                   part: np.ndarray, config: RateSimConfig) -> float:
    """Traffic through the busiest downstream egress pipe.

    A pipe carries the cached-value hits it serves (values live in the pipe
    of the owning server, §4.4.4) plus the queries forwarded to its servers.
    Servers spread over pipes round-robin by partition index.
    """
    pipes = part % config.num_pipes
    per_pipe = np.bincount(pipes, weights=hit_rate + server_traffic,
                           minlength=config.num_pipes)
    return float(per_pipe.max())


def top_k_mask(read_probs: np.ndarray, k: int) -> np.ndarray:
    """Mask of the *k* most-read items (ideal cache contents)."""
    mask = np.zeros(len(read_probs), dtype=bool)
    if k > 0:
        idx = np.argpartition(read_probs, -min(k, len(read_probs)))[-k:]
        mask[idx] = True
    return mask


def mask_from_keys(keys: Sequence[bytes], keyspace: KeySpace) -> np.ndarray:
    """Mask from concrete cached keys (hybrid emulation uses this)."""
    mask = np.zeros(keyspace.num_keys, dtype=bool)
    for key in keys:
        mask[keyspace.item(key)] = True
    return mask


def cached_write_fraction(write_probs: np.ndarray,
                          cached_mask: np.ndarray) -> float:
    """Fraction of writes that land on a cached key.

    Each such write triggers the coherence round trip — invalidation at
    the switch, value update from the owner, ack back — so this fraction
    scales the extra hop/processing accounting when the fast-forward
    synthesizes a mixed-workload epoch (§4.3 write path).
    """
    if write_probs is None or not cached_mask.any():
        return 0.0
    total = float(write_probs.sum())
    if total <= 0.0:
        return 0.0
    return float(write_probs[cached_mask].sum()) / total
