"""Cluster assembly: build a runnable NetCache rack in the simulator.

Wires Fig 2(a): clients above the ToR, storage servers below it, the
NetCache switch in between, and the controller beside the switch.  Scaled
configurations (fewer servers, lower rates) keep discrete-event runs
tractable; the scale-free experiments use :mod:`repro.sim.ratesim` instead.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.client.api import NetCacheClient, SyncClient, WorkloadClient
from repro.client.ratecontrol import AimdRateController
from repro.client.workload import Workload, WorkloadSpec
from repro.constants import (
    DEFAULT_CACHE_ITEMS,
    LINK_LATENCY,
    NUM_VALUE_STAGES,
    SERVER_RATE,
)
from repro.core.controller import CacheController
from repro.core.switch import NetCacheSwitch, PlainSwitch
from repro.errors import ConfigurationError
from repro.kvstore.partition import HashPartitioner
from repro.kvstore.server import StorageServer
from repro.net.simulator import Simulator
from repro.net.topology import make_rack_plan
from repro.reliability.retry import RetryPolicy


@dataclasses.dataclass
class ClusterConfig:
    """Parameters of one simulated rack."""

    num_servers: int = 16
    num_clients: int = 1
    server_rate: float = SERVER_RATE
    server_queue_limit: Optional[int] = None
    cache_items: int = DEFAULT_CACHE_ITEMS
    enable_cache: bool = True  # False builds the NoCache baseline rack
    link_latency: float = LINK_LATENCY
    link_loss: float = 0.0
    #: lookup-table entries and per-pipe value slots for the switch model;
    #: small defaults keep tests fast, the microbenchmark uses full size.
    lookup_entries: int = 16 * 1024
    value_slots: int = 16 * 1024
    num_pipes: int = 2
    #: cache geometry for the switch ("paper", "setassoc", "orbit").
    layout: str = "paper"
    #: value stages available to the layout.  Fewer stages shrink a
    #: segment (stages x slot bytes), which is how packet-level Orbit runs
    #: exercise multi-pass serves within the wire format's value cap.
    num_value_stages: int = NUM_VALUE_STAGES
    controller_update_interval: float = 0.01
    stats_interval: float = 1.0
    hot_threshold: int = 8
    sample_rate: float = 1.0
    seed: int = 0
    # Reliability layer (see docs/RELIABILITY.md).
    #: retry policy installed on workload clients (None = fail-stop).
    client_retry_policy: Optional[RetryPolicy] = None
    heartbeat_interval: float = 0.005
    failure_threshold: int = 3
    lease_timeout: float = 0.005
    insertion_latency: float = 200e-6

    def __post_init__(self):
        if self.num_servers <= 0 or self.num_clients <= 0:
            raise ConfigurationError("need at least one server and client")


class Cluster:
    """One assembled rack: simulator + switch + servers + clients."""

    def __init__(self, config: ClusterConfig = ClusterConfig()):
        self.config = config
        self.sim = Simulator()
        plan = make_rack_plan(config.num_servers, config.num_clients)
        self.plan = plan
        self.partitioner = HashPartitioner(plan.server_ids)

        if config.enable_cache:
            from repro.core.stats import QueryStatistics

            stats = QueryStatistics(
                entries=config.lookup_entries,
                hot_threshold=config.hot_threshold,
                sample_rate=config.sample_rate,
                seed=config.seed,
            )
            self.switch: PlainSwitch = NetCacheSwitch(
                plan.tor_id,
                num_pipes=config.num_pipes,
                ports_per_pipe=max(1, (config.num_servers + config.num_clients)
                                   // config.num_pipes + 1),
                entries=config.lookup_entries,
                value_slots=config.value_slots,
                num_value_stages=config.num_value_stages,
                stats=stats,
                layout=config.layout,
            )
        else:
            self.switch = PlainSwitch(plan.tor_id)
        self.sim.add_node(self.switch)

        self.servers: Dict[int, StorageServer] = {}
        for sid in plan.server_ids:
            server = StorageServer(
                sid, gateway=plan.tor_id, service_rate=config.server_rate,
                queue_limit=config.server_queue_limit,
            )
            self.sim.add_node(server)
            self.servers[sid] = server

        self.clients: List[NetCacheClient] = []
        for cid in plan.client_ids:
            client = NetCacheClient(cid, gateway=plan.tor_id,
                                    partitioner=self.partitioner)
            self.sim.add_node(client)
            self.clients.append(client)

        # Cables + switch port bindings.
        for sid, port in plan.server_ports.items():
            self.sim.connect(plan.tor_id, sid, latency=config.link_latency,
                             loss_prob=config.link_loss, seed=config.seed)
            self.switch.attach_neighbor(port, sid)
        for cid, port in plan.client_ports.items():
            self.sim.connect(plan.tor_id, cid, latency=config.link_latency,
                             loss_prob=config.link_loss, seed=config.seed)
            self.switch.attach_neighbor(port, cid)

        self.controller: Optional[CacheController] = None
        if config.enable_cache:
            self.controller = CacheController(
                self.switch, self.partitioner, self.servers,
                cache_capacity=config.cache_items,
                stats_interval=config.stats_interval,
                update_interval=config.controller_update_interval,
                seed=config.seed,
                heartbeat_interval=config.heartbeat_interval,
                failure_threshold=config.failure_threshold,
                lease_timeout=config.lease_timeout,
                insertion_latency=config.insertion_latency,
                async_insertions=True,
                server_probe=self._server_reachable,
            )
            # Shim degraded-mode recovery goes through the controller
            # (eviction + ack), closing the write-around loop.
            for server in self.servers.values():
                server.shim.degraded_handler = self.controller.report_degraded_key

    def _server_reachable(self, server_id: int) -> bool:
        """Control-plane probe: a heartbeat reaches the server only if the
        node is up *and* its ToR cable is up (a partitioned server is as
        dead to the control plane as a crashed one)."""
        if self.sim.node_is_down(server_id):
            return False
        link = self.sim.link_between(self.plan.tor_id, server_id)
        return link.up

    # -- setup helpers -------------------------------------------------------------

    def load_workload_data(self, workload: Workload) -> None:
        """Preload every item into its owning server's store."""
        spec = workload.spec
        for item in range(spec.num_keys):
            key = workload.keyspace.key(item)
            server = self.servers[self.partitioner.server_for(key)]
            server.store.put(key, workload.value_for(key))

    def warm_cache(self, workload: Workload,
                   items: Optional[int] = None) -> int:
        """Pre-populate the cache with the hottest items (§7.4)."""
        if self.controller is None:
            return 0
        count = items if items is not None else self.config.cache_items
        return self.controller.preload(workload.hottest_keys(count))

    def start_controller(self) -> None:
        if self.controller is not None:
            self.controller.start()

    def sync_client(self, index: int = 0, timeout: float = 1.0) -> SyncClient:
        """Blocking client facade for scripts/tests."""
        return SyncClient(self.clients[index], timeout=timeout)

    def add_workload_client(self, workload: Workload, rate: float,
                            aimd: bool = False,
                            control_interval: float = 0.1,
                            retry_policy: Optional[RetryPolicy] = None,
                            versioned_writes: bool = False) -> WorkloadClient:
        """Attach an open-loop load generator as an extra client node."""
        node_id = max(self.sim.nodes) + 1
        controller = None
        if aimd:
            controller = AimdRateController(initial_rate=rate,
                                            max_rate=rate * 100)
        if retry_policy is None:
            retry_policy = self.config.client_retry_policy
        client = WorkloadClient(node_id, gateway=self.plan.tor_id,
                                partitioner=self.partitioner,
                                workload=workload, rate=rate,
                                controller=controller,
                                control_interval=control_interval,
                                retry_policy=retry_policy,
                                versioned_writes=versioned_writes)
        self.sim.add_node(client)
        self.sim.connect(self.plan.tor_id, node_id,
                         latency=self.config.link_latency)
        port = max(self.plan.client_ports.values()) + 1 + len(
            [c for c in self.clients if isinstance(c, WorkloadClient)])
        self.switch.attach_neighbor(port, node_id)
        self.clients.append(client)
        return client

    # -- fault-injection hooks (driven by repro.faults) --------------------------------

    def link_to(self, node_id: int):
        """The cable between the ToR and *node_id*."""
        return self.sim.link_between(self.plan.tor_id, node_id)

    def partition_node(self, node_id: int) -> None:
        """Cut the cable between the ToR and *node_id* (server or client)."""
        self.link_to(node_id).take_down()

    def heal_node(self, node_id: int) -> None:
        """Reconnect a partitioned node."""
        self.link_to(node_id).bring_up()

    def crash_server(self, server_id: int) -> None:
        """Crash a storage server: packets to/from it vanish.  The store
        survives (it is durable); timers resume on restart."""
        if server_id not in self.servers:
            raise ConfigurationError(f"{server_id} is not a storage server")
        self.sim.set_node_down(server_id, True)

    def restart_server(self, server_id: int) -> None:
        if server_id not in self.servers:
            raise ConfigurationError(f"{server_id} is not a storage server")
        self.sim.set_node_down(server_id, False)

    def reboot_switch(self) -> int:
        """Reboot the ToR: the cache empties (§3); returns entries lost."""
        reboot = getattr(self.switch, "reboot", None)
        return reboot() if reboot is not None else 0

    def stall_controller(self) -> None:
        """Freeze the control plane: no update rounds, no statistics resets
        (missed 1-second clears) until :meth:`resume_controller`."""
        if self.controller is not None:
            self.controller.stop()

    def resume_controller(self) -> None:
        if self.controller is not None:
            self.controller.start()

    def heal_all_faults(self) -> None:
        """Clear every injected fault: links up and fault-free, nodes up,
        controller running.  Used by the chaos runner before quiescing."""
        for node_id in list(self.servers) + [c.node_id for c in self.clients]:
            link = self.sim._links.get(self.sim._link_key(self.plan.tor_id,
                                                          node_id))
            if link is None:
                continue
            link.bring_up()
            link.start_loss_burst(0.0, 0.0)
            link.set_duplication(0.0)
            link.set_reordering(0.0)
        for sid in self.servers:
            self.sim.set_node_down(sid, False)
        self.resume_controller()

    # -- measurement -----------------------------------------------------------------

    def run(self, seconds: float) -> None:
        self.sim.run_until(self.sim.now + seconds)

    def total_received(self) -> int:
        return sum(c.received for c in self.clients)

    def total_cache_hits(self) -> int:
        return sum(c.cache_hits for c in self.clients)

    def all_latencies(self) -> List[float]:
        out: List[float] = []
        for c in self.clients:
            out.extend(c.latencies)
        return out


def make_cluster(num_servers: int = 16, enable_cache: bool = True,
                 **overrides) -> Cluster:
    """Convenience constructor with keyword overrides."""
    config = ClusterConfig(num_servers=num_servers,
                           enable_cache=enable_cache, **overrides)
    return Cluster(config)


def default_workload(num_keys: int = 10_000, skew: float = 0.99,
                     write_ratio: float = 0.0, seed: int = 0,
                     value_size: int = 128) -> Workload:
    """A paper-style workload with small defaults for DES runs."""
    return Workload(WorkloadSpec(num_keys=num_keys, read_skew=skew,
                                 write_ratio=write_ratio, seed=seed,
                                 value_size=value_size))
