"""Canned reproductions of every evaluation figure (§7).

Each ``figXX_*`` function regenerates one figure's data series and returns
structured rows; ``format_table`` renders them the way the benchmark harness
prints them.  EXPERIMENTS.md records these outputs against the paper's
numbers.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.client.zipf import ZipfDistribution
from repro.constants import DEFAULT_CACHE_ITEMS, SERVER_RATE
from repro.sim import microbench
from repro.sim.cluster import Cluster, ClusterConfig, default_workload
from repro.sim.emulation import EmulationResult, run_dynamics
from repro.sim.ratesim import RateSimConfig, simulate, top_k_mask
from repro.sim.scaling import ScalingConfig, ScalingPoint, sweep


def format_table(headers: Sequence[str], rows: Sequence[Sequence]) -> str:
    """Fixed-width text table (the harness's output format)."""
    cells = [[str(h) for h in headers]]
    for row in rows:
        cells.append([
            f"{v:.4g}" if isinstance(v, float) else str(v) for v in row
        ])
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for r_i, row in enumerate(cells):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if r_i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# Fig 9: switch microbenchmark (snake test)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class MicrobenchRow:
    x: int                      # value size (9a) or cache size (9b)
    read_bqps: float
    update_bqps: float
    pipeline_passes: int
    verified: bool


def fig09a_value_size(
    value_sizes: Sequence[int] = (16, 32, 64, 96, 128, 192, 256),
    functional_check: bool = True,
) -> List[MicrobenchRow]:
    """Fig 9(a): throughput vs value size; flat at 2.24 BQPS to 128 B."""
    rows = []
    for size in value_sizes:
        tput = microbench.snake_throughput(size, cache_size=64 * 1024)
        verified = True
        if functional_check and size <= 128:
            check = microbench.verify_pipeline(size, cache_size=64,
                                               num_queries=128)
            verified = check.all_correct
        rows.append(MicrobenchRow(
            x=size, read_bqps=tput / 1e9, update_bqps=tput / 1e9,
            pipeline_passes=microbench.pipeline_passes(size),
            verified=verified,
        ))
    return rows


def fig09b_cache_size(
    cache_sizes: Sequence[int] = (1024, 4096, 16384, 32768, 65536),
    functional_check: bool = True,
) -> List[MicrobenchRow]:
    """Fig 9(b): throughput vs cache size; flat at 2.24 BQPS to 64K items."""
    rows = []
    for size in cache_sizes:
        tput = microbench.snake_throughput(128, cache_size=size)
        verified = True
        if functional_check:
            check = microbench.verify_pipeline(
                128, cache_size=min(size, 128), num_queries=128)
            verified = check.all_correct
        rows.append(MicrobenchRow(
            x=size, read_bqps=tput / 1e9, update_bqps=tput / 1e9,
            pipeline_passes=1, verified=verified,
        ))
    return rows


# ---------------------------------------------------------------------------
# Fig 10(a)/(b): system throughput and per-server breakdown
# ---------------------------------------------------------------------------

#: key-space size for the static rack experiments.
STATIC_NUM_KEYS = 1_000_000

SKEW_LABELS: Dict[str, float] = {
    "uniform": 0.0,
    "zipf-0.9": 0.9,
    "zipf-0.95": 0.95,
    "zipf-0.99": 0.99,
}


@dataclasses.dataclass
class ThroughputRow:
    workload: str
    nocache_bqps: float
    netcache_bqps: float
    cache_portion_bqps: float
    server_portion_bqps: float
    improvement: float


def _static_config(**overrides) -> RateSimConfig:
    return RateSimConfig(num_servers=128, server_rate=SERVER_RATE, **overrides)


def _read_probs(skew: float, num_keys: int = STATIC_NUM_KEYS) -> np.ndarray:
    return ZipfDistribution(num_keys, skew).probs


def fig10a_throughput(
    cache_items: int = DEFAULT_CACHE_ITEMS,
    num_keys: int = STATIC_NUM_KEYS,
    skews: Optional[Dict[str, float]] = None,
) -> List[ThroughputRow]:
    """Fig 10(a): NoCache vs NetCache under increasing skew, read-only."""
    config = _static_config()
    rows = []
    for label, skew in (skews or SKEW_LABELS).items():
        probs = _read_probs(skew, num_keys)
        nocache = simulate(probs, None, config)
        netcache = simulate(probs, top_k_mask(probs, cache_items), config)
        rows.append(ThroughputRow(
            workload=label,
            nocache_bqps=nocache.throughput / 1e9,
            netcache_bqps=netcache.throughput / 1e9,
            cache_portion_bqps=netcache.cache_throughput / 1e9,
            server_portion_bqps=netcache.server_throughput / 1e9,
            improvement=netcache.throughput / nocache.throughput,
        ))
    return rows


@dataclasses.dataclass
class BreakdownRow:
    workload: str
    cached: bool
    per_server_normalized: np.ndarray   # sorted descending

    @property
    def imbalance(self) -> float:
        arr = self.per_server_normalized
        return float(arr.max() / arr.mean()) if arr.mean() > 0 else 1.0


def fig10b_breakdown(
    cache_items: int = DEFAULT_CACHE_ITEMS,
    num_keys: int = STATIC_NUM_KEYS,
    skews: Optional[Dict[str, float]] = None,
) -> List[BreakdownRow]:
    """Fig 10(b): per-server throughput, skewed w/o cache, flat with it."""
    config = _static_config()
    rows = []
    for label, skew in (skews or SKEW_LABELS).items():
        if label == "uniform":
            continue
        probs = _read_probs(skew, num_keys)
        for cached, mask in ((False, None),
                             (True, top_k_mask(probs, cache_items))):
            result = simulate(probs, mask, config)
            loads = np.sort(result.per_server_load)[::-1]
            peak = loads.max()
            rows.append(BreakdownRow(
                workload=label, cached=cached,
                per_server_normalized=loads / peak if peak else loads,
            ))
    return rows


# ---------------------------------------------------------------------------
# Fig 10(c): latency vs throughput (discrete-event, scaled rack)
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class LatencyRow:
    system: str
    offered_fraction: float     # of the balanced-rack capacity
    throughput_qps: float
    mean_latency_us: float
    p99_latency_us: float


def fig10c_latency(
    num_servers: int = 8,
    server_rate: float = 50_000.0,
    offered_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9, 1.1),
    num_keys: int = 2_000,
    skew: float = 0.99,
    sim_seconds: float = 0.25,
    seed: int = 0,
) -> List[LatencyRow]:
    """Fig 10(c): average latency stays flat for NetCache while NoCache
    saturates at a small fraction of the rack capacity.

    Runs a scaled-down rack in the discrete-event simulator; rates are
    lower than the testbed's but the *relative* saturation points and the
    hit/miss latency split reproduce the figure.
    """
    rows: List[LatencyRow] = []
    capacity = num_servers * server_rate
    for enable_cache, name in ((False, "NoCache"), (True, "NetCache")):
        for fraction in offered_fractions:
            cluster = Cluster(ClusterConfig(
                num_servers=num_servers, server_rate=server_rate,
                enable_cache=enable_cache, cache_items=100,
                lookup_entries=1024, value_slots=1024, seed=seed,
            ))
            workload = default_workload(num_keys=num_keys, skew=skew,
                                        seed=seed)
            cluster.load_workload_data(workload)
            if enable_cache:
                cluster.warm_cache(workload, 100)
            client = cluster.add_workload_client(
                workload, rate=fraction * capacity)
            cluster.run(sim_seconds)
            lat = np.asarray(client.latencies[len(client.latencies) // 5 :])
            if lat.size == 0:
                continue
            rows.append(LatencyRow(
                system=name,
                offered_fraction=fraction,
                throughput_qps=client.received / sim_seconds,
                mean_latency_us=float(lat.mean() * 1e6),
                p99_latency_us=float(np.percentile(lat, 99) * 1e6),
            ))
    return rows


# ---------------------------------------------------------------------------
# Fig 10(d): write ratio
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class WriteRatioRow:
    write_dist: str
    write_ratio: float
    nocache_bqps: float
    netcache_bqps: float


def fig10d_write_ratio(
    write_ratios: Sequence[float] = (0.0, 0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
    cache_items: int = DEFAULT_CACHE_ITEMS,
    num_keys: int = STATIC_NUM_KEYS,
    read_skew: float = 0.99,
) -> List[WriteRatioRow]:
    """Fig 10(d): uniform writes decay NetCache linearly; same-skew writes
    erase the caching benefit past ~0.2 write ratio."""
    config = _static_config()
    read_probs = _read_probs(read_skew, num_keys)
    uniform = _read_probs(0.0, num_keys)
    mask = top_k_mask(read_probs, cache_items)
    rows = []
    for dist_name, write_probs in (("uniform", uniform),
                                   ("zipf-0.99", read_probs)):
        for w in write_ratios:
            cfg = dataclasses.replace(config, write_ratio=w)
            nocache = simulate(read_probs, None, cfg, write_probs=write_probs)
            netcache = simulate(read_probs, mask, cfg,
                                write_probs=write_probs)
            rows.append(WriteRatioRow(
                write_dist=dist_name, write_ratio=w,
                nocache_bqps=nocache.throughput / 1e9,
                netcache_bqps=netcache.throughput / 1e9,
            ))
    return rows


# ---------------------------------------------------------------------------
# Fig 10(e): cache size
# ---------------------------------------------------------------------------

@dataclasses.dataclass
class CacheSizeRow:
    skew: float
    cache_items: int
    throughput_bqps: float
    cache_portion_bqps: float


def fig10e_cache_size(
    cache_sizes: Sequence[int] = (10, 100, 1_000, 10_000, 65_536),
    skews: Sequence[float] = (0.9, 0.99),
    num_keys: int = STATIC_NUM_KEYS,
) -> List[CacheSizeRow]:
    """Fig 10(e): ~1 000 cached items balance 128 servers; returns diminish."""
    config = _static_config()
    rows = []
    for skew in skews:
        probs = _read_probs(skew, num_keys)
        for size in cache_sizes:
            result = simulate(probs, top_k_mask(probs, size), config)
            rows.append(CacheSizeRow(
                skew=skew, cache_items=size,
                throughput_bqps=result.throughput / 1e9,
                cache_portion_bqps=result.cache_throughput / 1e9,
            ))
    return rows


# ---------------------------------------------------------------------------
# Fig 10(f): scalability
# ---------------------------------------------------------------------------

def fig10f_scalability(
    rack_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
    config: ScalingConfig = ScalingConfig(),
) -> List[ScalingPoint]:
    """Fig 10(f): NoCache flat, Leaf-Cache limited, Leaf-Spine linear."""
    return sweep(list(rack_counts), config)


# ---------------------------------------------------------------------------
# Fig 11: dynamics
# ---------------------------------------------------------------------------

def fig11_dynamics(kind: str, duration: float = 40.0,
                   seed: int = 0, **overrides) -> EmulationResult:
    """Fig 11(a/b/c): throughput trace under hot-in / random / hot-out."""
    return run_dynamics(kind, duration=duration, seed=seed, **overrides)


def dynamics_summary(result: EmulationResult) -> Dict[str, float]:
    """Headline numbers of a dynamics trace: steady-state rate, depth of the
    worst dip, and mean recovery."""
    rates = np.asarray(result.throughput)
    if rates.size == 0:
        return {"steady": 0.0, "worst_dip": 0.0, "mean": 0.0}
    steady = float(np.percentile(rates, 90))
    return {
        "steady": steady,
        "worst_dip": float(rates.min() / steady) if steady else 0.0,
        "mean": float(rates.mean()),
    }
