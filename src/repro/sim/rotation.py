"""Server rotation: the paper's §7.1 measurement methodology, reproduced.

The authors had 3 machines for a 128-partition rack, so they measured it in
rotations: (1) find the bottleneck partition; (2) saturate it together with
one other partition and derive the full-system client load from the
saturating rate; (3) re-run for every remaining partition at its share of
that load; (4) sum the per-partition throughputs, justified by the
shared-nothing architecture and the switch microbenchmark.

We have no such constraint — the rate simulator computes the same quantity
directly — but reproducing the *procedure* packet-by-packet shows the
methodology itself is sound: its aggregate agrees with the direct
equilibrium computation (asserted in ``test_rotation.py``).

Queries during a rotation target only the two active partitions, exactly
like the paper's client ("generates queries only destined to the
corresponding partitions ... based on the Zipf distribution").
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.client.workload import Workload
from repro.errors import ConfigurationError
from repro.net.protocol import Op
from repro.sim.cluster import Cluster, ClusterConfig, default_workload


class PartitionFilteredWorkload:
    """A workload restricted to a set of partitions (rejection sampling)."""

    def __init__(self, workload: Workload, cluster: Cluster,
                 partitions: Tuple[int, ...]):
        self.workload = workload
        self.partitioner = cluster.partitioner
        self.allowed = frozenset(partitions)
        self.spec = workload.spec
        self.keyspace = workload.keyspace

    def next_query(self) -> Tuple[Op, bytes]:
        while True:
            op, key = self.workload.next_query()
            if self.partitioner.partition_of(key) in self.allowed:
                return op, key

    def value_for(self, key: bytes) -> bytes:
        return self.workload.value_for(key)


@dataclasses.dataclass
class RotationResult:
    """Aggregated outcome of a full rotation sweep."""

    total_throughput: float
    cache_throughput: float
    per_partition: Dict[int, float]
    bottleneck: int
    system_rate: float  # derived full-system client load

    @property
    def server_throughput(self) -> float:
        return self.total_throughput - self.cache_throughput


@dataclasses.dataclass
class RotationConfig:
    """Scaled-down rotation experiment."""

    num_partitions: int = 8
    server_rate: float = 20_000.0
    num_keys: int = 2_000
    skew: float = 0.99
    enable_cache: bool = True
    cache_items: int = 100
    run_seconds: float = 0.06
    loss_target: float = 0.02
    seed: int = 0

    def __post_init__(self):
        if self.num_partitions < 2:
            raise ConfigurationError("rotation needs at least 2 partitions")


class ServerRotation:
    """Drives the §7.1 procedure on the packet-level simulator."""

    def __init__(self, config: RotationConfig = RotationConfig()):
        self.config = config
        self.workload = default_workload(num_keys=config.num_keys,
                                         skew=config.skew, seed=config.seed)
        self._shares = self._partition_shares()

    # -- building blocks --------------------------------------------------------

    def _fresh_cluster(self) -> Cluster:
        config = self.config
        cluster = Cluster(ClusterConfig(
            num_servers=config.num_partitions,
            server_rate=config.server_rate,
            enable_cache=config.enable_cache,
            cache_items=config.cache_items,
            lookup_entries=max(256, 2 * config.cache_items),
            value_slots=max(256, 2 * config.cache_items),
            server_queue_limit=32, seed=config.seed,
        ))
        cluster.load_workload_data(self.workload)
        if config.enable_cache:
            cluster.warm_cache(self.workload, config.cache_items)
        return cluster

    def _partition_shares(self) -> np.ndarray:
        """Per-partition share of *server-bound* traffic (misses)."""
        probe = self._fresh_cluster()
        probs = self.workload.read_item_probs()
        if self.config.enable_cache:
            from repro.sim.ratesim import mask_from_keys

            mask = mask_from_keys(probe.switch.dataplane.cached_keys()
                                  if probe.controller else [],
                                  self.workload.keyspace)
            probs = np.where(mask, 0.0, probs)
        shares = np.zeros(self.config.num_partitions)
        for item in np.flatnonzero(probs):
            key = self.workload.keyspace.key(int(item))
            shares[probe.partitioner.partition_of(key)] += probs[item]
        return shares

    def find_bottleneck(self) -> int:
        """The partition with the largest server-bound share."""
        return int(np.argmax(self._shares))

    def _run_pair(self, partitions: Tuple[int, int], rate: float
                  ) -> Tuple[Dict[int, float], float, float]:
        """Drive only *partitions* at total *rate*; returns
        (per-partition served rate, loss fraction, cache-hit rate)."""
        config = self.config
        cluster = self._fresh_cluster()
        filtered = PartitionFilteredWorkload(self.workload, cluster,
                                             partitions)
        client = cluster.add_workload_client(filtered, rate=rate)
        cluster.run(config.run_seconds)
        sent = max(1, client.sent)
        loss = max(0.0, 1.0 - client.received / sent)
        served = {}
        for p in partitions:
            server = cluster.servers[cluster.partitioner.server_ids[p]]
            served[p] = server.processed / config.run_seconds
        hit_rate = client.cache_hits / config.run_seconds
        return served, loss, hit_rate

    def _pair_share(self, partitions: Tuple[int, int]) -> float:
        """Fraction of total client traffic destined to *partitions*
        (server-bound shares plus their slice of the cache hits)."""
        probs = self.workload.read_item_probs()
        # Total per-partition demand (cached or not) for rate accounting.
        total = 0.0
        keyspace = self.workload.keyspace
        # Vectorized-enough: reuse the cached probe partitioner mapping.
        for item in np.flatnonzero(probs):
            key = keyspace.key(int(item))
            if self._probe_partition(key) in partitions:
                total += probs[item]
        return total

    _probe_cluster: Optional[Cluster] = None

    def _probe_partition(self, key: bytes) -> int:
        if self._probe_cluster is None:
            self._probe_cluster = self._fresh_cluster()
        return self._probe_cluster.partitioner.partition_of(key)

    def saturate_bottleneck(self) -> Tuple[float, float]:
        """Binary-search the pair rate that saturates the bottleneck pair;
        returns (pair rate, implied full-system rate)."""
        config = self.config
        bottleneck = self.find_bottleneck()
        partner = (bottleneck + 1) % config.num_partitions
        pair = (bottleneck, partner)
        low, high = 0.0, 8.0 * config.server_rate
        # Grow `high` until it loses, then bisect.
        for _ in range(6):
            _, loss, _ = self._run_pair(pair, high)
            if loss > config.loss_target:
                break
            low, high = high, high * 2
        for _ in range(10):
            mid = (low + high) / 2
            _, loss, _ = self._run_pair(pair, mid)
            if loss > config.loss_target:
                high = mid
            else:
                low = mid
        pair_rate = low
        pair_share = self._pair_share(pair)
        system_rate = pair_rate / max(pair_share, 1e-12)
        return pair_rate, system_rate

    # -- the full procedure ---------------------------------------------------------

    def run(self) -> RotationResult:
        config = self.config
        bottleneck = self.find_bottleneck()
        _, system_rate = self.saturate_bottleneck()

        per_partition: Dict[int, float] = {}
        cache_rates: List[float] = []
        partitions = list(range(config.num_partitions))
        others = [p for p in partitions if p != bottleneck]
        # Pair the bottleneck with every other partition, as the paper
        # rotates two physical servers through all 64 pairings.
        for partner in others:
            pair = (bottleneck, partner)
            pair_rate = system_rate * self._pair_share(pair)
            served, _, hit_rate = self._run_pair(pair, pair_rate)
            per_partition.setdefault(bottleneck, served[bottleneck])
            per_partition[partner] = served[partner]
            cache_rates.append(hit_rate / self._pair_share(pair))

        server_total = sum(per_partition.values())
        # Cache throughput: average of the per-pair estimates, scaled to
        # the whole system (each pair only saw its slice of the hits).
        cache_total = float(np.mean(cache_rates)) if cache_rates else 0.0
        return RotationResult(
            total_throughput=server_total + cache_total,
            cache_throughput=cache_total,
            per_partition=per_partition,
            bottleneck=bottleneck,
            system_rate=system_rate,
        )
