"""Multi-rack scaling simulation (§5 "Scaling to multiple racks", Fig 10f).

The paper simulates scaling NetCache from one rack to 32 racks (4 096
servers) under three designs:

* **NoCache** — hash-partitioned servers only; the hottest server bottlenecks
  the whole system, so throughput barely grows with more servers;
* **Leaf-Cache** — each ToR caches the hottest items *of its own rack*.
  Racks are internally balanced, but "the load imbalance between racks still
  exists": queries to a rack's hot items still converge on that rack, and the
  rack's ingress capacity (its uplinks / upstream pipes) is fixed, so the
  hottest rack saturates while others idle;
* **Leaf-Spine-Cache** — spine switches additionally cache the globally
  hottest items, absorbing inter-rack skew before it reaches any rack;
  throughput grows linearly with servers.

This follows the paper's simulation assumptions: read-only workload and
switch caches that fully absorb queries to the items they hold.
"""

from __future__ import annotations

import dataclasses
from typing import List, Sequence

import numpy as np

from repro.constants import PIPE_RATE, SERVER_RATE
from repro.client.zipf import ZipfDistribution
from repro.errors import ConfigurationError
from repro.sim.ratesim import fast_partition_vector


@dataclasses.dataclass(frozen=True)
class ScalingConfig:
    """Parameters of the Fig 10(f) sweep."""

    servers_per_rack: int = 128
    num_keys: int = 1_000_000
    skew: float = 0.99
    server_rate: float = SERVER_RATE
    #: items each ToR can absorb for its rack.
    leaf_cache_items: int = 10_000
    #: globally-hottest items the spine tier absorbs.
    spine_cache_items: int = 10_000
    #: a rack's ingress capacity: two upstream egress pipes' worth of
    #: replies (the single-rack plateau of Fig 10c).
    rack_uplink_rate: float = 2 * PIPE_RATE
    partition_seed: int = 0x5EED

    def __post_init__(self):
        if self.servers_per_rack <= 0 or self.num_keys <= 0:
            raise ConfigurationError("rack and key space must be non-empty")


@dataclasses.dataclass
class ScalingPoint:
    """One (design, rack count) result."""

    design: str
    num_racks: int
    num_servers: int
    throughput: float


def _layout(num_racks: int, config: ScalingConfig):
    """(per-item probs, item -> server, item -> rack)."""
    num_servers = num_racks * config.servers_per_rack
    dist = ZipfDistribution(config.num_keys, config.skew)
    part = fast_partition_vector(config.num_keys, num_servers,
                                 config.partition_seed)
    racks = part // config.servers_per_rack
    return dist.probs, part, racks, num_servers


def nocache_throughput(num_racks: int,
                       config: ScalingConfig = ScalingConfig()) -> float:
    """Saturated throughput without any cache (hottest server binds)."""
    probs, part, _racks, num_servers = _layout(num_racks, config)
    per_server = np.bincount(part, weights=probs, minlength=num_servers)
    return float(config.server_rate / per_server.max())


def _leaf_residual(probs: np.ndarray, racks: np.ndarray, num_racks: int,
                   items_per_leaf: int) -> np.ndarray:
    """Per-item server-bound load after each ToR absorbs its rack's top
    items."""
    residual = probs.copy()
    for rack in range(num_racks):
        items = np.flatnonzero(racks == rack)
        if items.size == 0:
            continue
        hot = items[np.argsort(residual[items])[::-1][:items_per_leaf]]
        residual[hot] = 0.0
    return residual


def leaf_cache_throughput(num_racks: int,
                          config: ScalingConfig = ScalingConfig()) -> float:
    """ToR caches only: intra-rack balance, inter-rack imbalance remains.

    Two constraints per rack: (i) its servers carry the residual (uncached)
    load, evenly because the leaf cache balanced the rack; (ii) *all* of the
    rack's query replies — cache hits included — leave through the rack's
    fixed-capacity uplinks, so the rack with the most total demand binds.
    """
    probs, _part, racks, _ = _layout(num_racks, config)
    residual = _leaf_residual(probs, racks, num_racks,
                              config.leaf_cache_items)
    rack_demand = np.bincount(racks, weights=probs, minlength=num_racks)
    rack_residual = np.bincount(racks, weights=residual, minlength=num_racks)

    bounds = [config.rack_uplink_rate / rack_demand.max()]
    per_server_worst = rack_residual.max() / config.servers_per_rack
    if per_server_worst > 0:
        bounds.append(config.server_rate / per_server_worst)
    return float(min(bounds))


def leaf_spine_throughput(num_racks: int,
                          config: ScalingConfig = ScalingConfig()) -> float:
    """Spine + ToR caches: the spine absorbs the globally hottest items, so
    no single rack concentrates demand and throughput scales linearly."""
    probs, _part, racks, _ = _layout(num_racks, config)
    after_spine = probs.copy()
    order = np.argsort(probs)[::-1]
    after_spine[order[: config.spine_cache_items]] = 0.0
    residual = _leaf_residual(after_spine, racks, num_racks,
                              config.leaf_cache_items)
    rack_demand = np.bincount(racks, weights=after_spine, minlength=num_racks)
    rack_residual = np.bincount(racks, weights=residual, minlength=num_racks)

    bounds = []
    if rack_demand.max() > 0:
        bounds.append(config.rack_uplink_rate / rack_demand.max())
    per_server_worst = rack_residual.max() / config.servers_per_rack
    if per_server_worst > 0:
        bounds.append(config.server_rate / per_server_worst)
    if not bounds:
        raise ConfigurationError("caches absorbed the entire workload")
    return float(min(bounds))


def sweep(rack_counts: Sequence[int] = (1, 2, 4, 8, 16, 32),
          config: ScalingConfig = ScalingConfig()) -> List[ScalingPoint]:
    """Run all three designs over *rack_counts* (the Fig 10f series)."""
    points: List[ScalingPoint] = []
    for racks in rack_counts:
        n = racks * config.servers_per_rack
        points.append(ScalingPoint("NoCache", racks, n,
                                   nocache_throughput(racks, config)))
        points.append(ScalingPoint("Leaf-Cache", racks, n,
                                   leaf_cache_throughput(racks, config)))
        points.append(ScalingPoint("Leaf-Spine-Cache", racks, n,
                                   leaf_spine_throughput(racks, config)))
    return points
