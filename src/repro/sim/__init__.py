"""Experiment harness: cluster assembly, rate-equilibrium and hybrid
simulators, the switch microbenchmark, multi-rack scaling, and canned
per-figure experiments."""

from repro.sim.cluster import Cluster, ClusterConfig, default_workload, make_cluster
from repro.sim.emulation import (
    DynamicsEmulator,
    EmulationConfig,
    EmulationResult,
    run_dynamics,
)
from repro.sim.fabric import Fabric, FabricConfig
from repro.sim.rotation import RotationConfig, RotationResult, ServerRotation
from repro.sim.metrics import ThroughputMeter
from repro.sim.microbench import (
    SnakeCheck,
    SnakeConfig,
    pipeline_passes,
    snake_throughput,
    verify_pipeline,
)
from repro.sim.ratesim import (
    RateSimConfig,
    RateSimResult,
    fast_partition_vector,
    mask_from_keys,
    partition_vector,
    simulate,
    top_k_mask,
)
from repro.sim.scaling import (
    ScalingConfig,
    ScalingPoint,
    leaf_cache_throughput,
    leaf_spine_throughput,
    nocache_throughput,
    sweep,
)

__all__ = [
    "Cluster",
    "ClusterConfig",
    "DynamicsEmulator",
    "EmulationConfig",
    "EmulationResult",
    "Fabric",
    "FabricConfig",
    "RateSimConfig",
    "RateSimResult",
    "RotationConfig",
    "RotationResult",
    "ScalingConfig",
    "ServerRotation",
    "ScalingPoint",
    "SnakeCheck",
    "SnakeConfig",
    "ThroughputMeter",
    "default_workload",
    "fast_partition_vector",
    "leaf_cache_throughput",
    "leaf_spine_throughput",
    "make_cluster",
    "mask_from_keys",
    "nocache_throughput",
    "partition_vector",
    "pipeline_passes",
    "run_dynamics",
    "simulate",
    "snake_throughput",
    "sweep",
    "top_k_mask",
    "verify_pipeline",
]
