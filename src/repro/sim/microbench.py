"""Switch microbenchmark: the snake test (§7.1, §7.2, Fig 9).

Two parts:

* a *capacity model* that reproduces the paper's numbers: the measured
  throughput is the smaller of what the two traffic generators can offer
  (2 x 35 MQPS, multiplied by the x32 snake replication) and what the chip
  can forward (4+ BQPS aggregate, divided by the number of pipeline passes a
  value needs).  For values up to 128 B (8 stages x 16 B) one pass suffices,
  so the line is flat at 2.24 BQPS, bottlenecked by the generators — the
  paper's headline microbenchmark result;

* a *functional check* that actually builds a NetCache data plane, loads it
  with items, and pushes read and update packets through
  :meth:`NetCacheDataplane.process` to verify the pipeline really serves
  correct values at every size/cache-size point being reported.
"""

from __future__ import annotations

import dataclasses
from typing import List

from repro.constants import (
    CLIENT_RATE,
    LOOKUP_TABLE_ENTRIES,
    MAX_VALUE_SIZE,
    NUM_VALUE_STAGES,
    SNAKE_REPLICATION,
    SWITCH_RATE,
    VALUE_SLOT_SIZE,
)
from repro.errors import ConfigurationError
from repro.net.packet import make_get, make_put
from repro.net.protocol import Op
from repro.net.routing import RoutingTable
from repro.core.dataplane import Action, NetCacheDataplane


@dataclasses.dataclass(frozen=True)
class SnakeConfig:
    """Snake-test parameters (defaults mirror §7.2)."""

    num_generators: int = 2
    generator_rate: float = CLIENT_RATE
    replication: int = SNAKE_REPLICATION
    switch_rate: float = SWITCH_RATE
    num_value_stages: int = NUM_VALUE_STAGES
    slot_bytes: int = VALUE_SLOT_SIZE

    @property
    def offered_rate(self) -> float:
        """Load the generators can offer, after snake replication."""
        return self.num_generators * self.generator_rate * self.replication

    @property
    def one_pass_bytes(self) -> int:
        return self.num_value_stages * self.slot_bytes


def pipeline_passes(value_size: int, config: SnakeConfig = SnakeConfig()) -> int:
    """Pipeline traversals needed to serve a value (§5: recirculation)."""
    if value_size <= 0:
        raise ConfigurationError("value_size must be positive")
    return -(-value_size // config.one_pass_bytes)


def snake_throughput(value_size: int, cache_size: int,
                     config: SnakeConfig = SnakeConfig()) -> float:
    """Measured snake-test throughput (queries/second).

    Values beyond one pipeline pass recirculate, dividing the chip's
    effective packet rate; the cache size does not affect throughput as long
    as it fits the lookup table (Fig 9b).
    """
    if cache_size <= 0 or cache_size > LOOKUP_TABLE_ENTRIES:
        raise ConfigurationError(
            f"cache_size must be in [1, {LOOKUP_TABLE_ENTRIES}]"
        )
    passes = pipeline_passes(value_size, config)
    switch_bound = config.switch_rate / passes
    return min(config.offered_rate, switch_bound)


@dataclasses.dataclass
class SnakeCheck:
    """Outcome of the functional pipeline check."""

    queries: int
    correct: int
    updates: int

    @property
    def all_correct(self) -> bool:
        return self.queries == self.correct


def verify_pipeline(value_size: int, cache_size: int = 256,
                    num_queries: int = 512, seed: int = 0) -> SnakeCheck:
    """Drive a real data plane with reads and updates, verifying values.

    Uses a single-pipe data plane sized down for test speed; the structural
    constraints (slot widths, bitmap addressing) are identical to the full
    geometry, so a value that round-trips here round-trips on the chip model
    at any scale.
    """
    if value_size > MAX_VALUE_SIZE:
        raise ConfigurationError(
            "functional check covers single-pass values only"
        )
    routing = RoutingTable(default_port=0)
    routing.add_route(1, 1)  # server port
    routing.add_route(2, 2)  # client port
    dataplane = NetCacheDataplane(
        routing, num_pipes=1, ports_per_pipe=64,
        entries=max(cache_size, 8), value_slots=max(cache_size * 8, 64),
    )

    def value_of(i: int) -> bytes:
        pattern = bytes([(i + j) % 251 for j in range(value_size)])
        return pattern

    keys: List[bytes] = [f"snake{i:011d}".encode() for i in range(cache_size)]
    for i, key in enumerate(keys):
        if not dataplane.install(key, value_of(i), egress_port=1):
            raise ConfigurationError("pipe memory exhausted during setup")

    correct = 0
    updates = 0
    for q in range(num_queries):
        i = (q * 31 + seed) % cache_size
        pkt = make_get(src=2, dst=1, key=keys[i], seq=q)
        result = dataplane.process(pkt, ingress_port=2)
        expected = value_of(i)
        if (result.action is Action.FORWARD and pkt.op == Op.GET_REPLY
                and pkt.value == expected and pkt.served_by_cache):
            correct += 1
        # Every 8th query, write a new (same-size) value through the
        # write + update path and verify the next read sees it.
        if q % 8 == 7:
            new_value = value_of(i + 1)[:value_size]
            wpkt = make_put(src=2, dst=1, key=keys[i], value=new_value, seq=q)
            dataplane.process(wpkt, ingress_port=2)
            assert wpkt.op == Op.PUT_CACHED
            from repro.net.packet import make_cache_update

            upd = make_cache_update(src=1, dst=1, key=keys[i],
                                    value=new_value, seq=updates + 1)
            dataplane.process(upd, ingress_port=1)
            updates += 1

            rpkt = make_get(src=2, dst=1, key=keys[i], seq=q)
            dataplane.process(rpkt, ingress_port=2)
            if rpkt.value != new_value:
                raise ConfigurationError("update path served a stale value")

            # Restore the original value so later reads verify.
            upd2 = make_cache_update(src=1, dst=1, key=keys[i],
                                     value=value_of(i), seq=updates + 1)
            dataplane.process(upd2, ingress_port=1)
            updates += 1
    return SnakeCheck(queries=num_queries, correct=correct, updates=updates)
