"""Simulator-core harness: scalar vs batched runs, equivalence, fast-forward.

This module is the user-facing surface of the batched fast path
(:mod:`repro.net.fastpath`):

* :func:`build_rack` assembles one canonical read-benchmark rack the same
  way under both paths (same seeds, same preload, same controller);
* :func:`run_scalar` / :func:`run_batched` execute it with the per-packet
  event loop (the executable specification) or the lanes engine;
* :func:`counters_snapshot` / :func:`diff_snapshots` capture and compare
  every gated counter — the equivalence contract is *exact equality*,
  enforced by ``tests/test_prop_simcore.py`` and the ``simcore`` perf/CI
  scenario;
* :class:`SimCoreRunner` adds the steady-state fast-forward: when the
  controller has been quiescent for a few epochs on a clean, read-only
  rack, whole statistics epochs are advanced with the rate-equilibrium
  model (:mod:`repro.sim.ratesim`) instead of per-packet simulation,
  re-entering event mode at the next epoch boundary.  Fast-forwarded runs
  are *approximate* (their snapshots are marked, never byte-gated).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.client.workload import Workload, WorkloadSpec
from repro.errors import ConfigurationError
from repro.net.fastpath import FastPathEngine
from repro.net.trace import DeliveryTrace
from repro.reliability.retry import RetryPolicy
from repro.sim.cluster import Cluster, ClusterConfig
from repro.sim.ratesim import (
    CacheContentsMask,
    RateSimConfig,
    RateSimResult,
    cached_write_fraction,
    partition_vector_for_servers,
    simulate,
)


@dataclasses.dataclass(frozen=True)
class SimCoreConfig:
    """One simulator-core benchmark scenario (shared by both paths)."""

    num_servers: int = 8
    num_keys: int = 5_000
    cache_items: int = 64
    lookup_entries: int = 1_024
    skew: float = 0.99
    write_ratio: float = 0.0
    rate: float = 1e6
    duration: float = 0.1
    warm: bool = True
    #: heavy-hitter report threshold; a high value models the settled
    #: regime where the warm cache already holds the hot set (the
    #: fast-forwardable steady state).
    hot_threshold: int = 8
    #: statistics epoch; also the fast-forward granularity.
    stats_interval: float = 1.0
    seed: int = 0
    #: concurrent open-loop clients; each beyond the first draws from a
    #: forked (reseeded) query stream over the same popularity map.
    num_clients: int = 1
    #: per-client rates overriding ``rate`` (length must be num_clients).
    client_rates: Optional[Tuple[float, ...]] = None
    #: give every client the default retry policy (seeded from ``seed``).
    retries: bool = False
    #: cache geometry for the switch ("paper", "setassoc", "orbit").
    #: All three layouts run natively under the lanes engine through
    #: their vectorized batch probes (``CacheLayout.classify_reads``);
    #: the differential harness holds each one byte-identical to the
    #: scalar loop, including Orbit's per-hit recirculation delays.
    layout: str = "paper"
    #: bytes per stored value (threaded into the workload).  Values wider
    #: than one Orbit segment serve in multiple recirculation passes;
    #: values wider than a layout's ``max_value_size`` are uncacheable.
    value_size: int = 128
    #: value stages for the switch (fewer stages -> narrower Orbit
    #: segments -> multi-pass serves that still fit the wire format).
    num_value_stages: int = 8

    def __post_init__(self):
        if self.num_clients < 1:
            raise ConfigurationError("need at least one client")
        if (self.client_rates is not None
                and len(self.client_rates) != self.num_clients):
            raise ConfigurationError(
                "client_rates must have one rate per client")

    @property
    def rates(self) -> Tuple[float, ...]:
        return self.client_rates or (self.rate,) * self.num_clients

    @property
    def packets(self) -> int:
        return int(sum(self.rates) * self.duration)


def build_rack(config: SimCoreConfig):
    """Assemble the scenario rack; returns ``(cluster, client, workload)``.

    Both paths call this with the same config, so every seed-derived
    decision (partitioning, sampler, workload stream) is shared; only the
    driving loop differs.
    """
    cluster = Cluster(ClusterConfig(
        num_servers=config.num_servers,
        cache_items=config.cache_items,
        lookup_entries=config.lookup_entries,
        value_slots=config.lookup_entries,
        hot_threshold=config.hot_threshold,
        stats_interval=config.stats_interval,
        seed=config.seed,
        layout=config.layout,
        num_value_stages=config.num_value_stages,
    ))
    workload = Workload(WorkloadSpec(
        num_keys=config.num_keys, read_skew=config.skew,
        write_ratio=config.write_ratio, value_size=config.value_size,
        seed=config.seed,
    ))
    cluster.load_workload_data(workload)
    if config.warm:
        cluster.warm_cache(workload, config.cache_items)
    policy = RetryPolicy(seed=config.seed) if config.retries else None
    rates = config.rates
    client = cluster.add_workload_client(workload, rate=rates[0],
                                         retry_policy=policy)
    for i in range(1, config.num_clients):
        # Forked stream: same popularity map (hot set agreement), own RNG
        # streams — the 7919 stride keeps sibling seeds well separated.
        cluster.add_workload_client(workload.fork(7919 * i), rate=rates[i],
                                    retry_policy=policy)
    cluster.start_controller()
    return cluster, client, workload


def run_scalar(config: SimCoreConfig) -> Dict:
    """Reference run: the per-packet event loop, verbatim."""
    cluster, client, workload = build_rack(config)
    trace = DeliveryTrace().attach(cluster.sim)
    cluster.sim.run_until(cluster.sim.now + config.duration)
    return counters_snapshot(cluster, client, trace)


def run_batched(config: SimCoreConfig,
                fast_forward: bool = False) -> Dict:
    """Lanes-engine run of the same scenario."""
    cluster, client, workload = build_rack(config)
    trace = DeliveryTrace()
    runner = SimCoreRunner(cluster, client, workload, trace=trace,
                           fast_forward=fast_forward)
    runner.run(config.duration)
    snap = counters_snapshot(cluster, client, trace, engine=runner.engine)
    snap["ff_epochs"] = runner.ff_epochs
    return snap


# -- counter capture -----------------------------------------------------------


def counters_snapshot(cluster: Cluster, client, trace: DeliveryTrace,
                      engine: Optional[FastPathEngine] = None) -> Dict:
    """Every gated counter of one finished run, as a flat dict.

    Not included, deliberately: ``events.processed`` (the whole point of
    the fast path is fewer events), packet ids (scalar replies allocate
    ``Packet`` objects, lanes don't — nothing gated reads them), and
    ``_outstanding`` (the scalar loop keeps an entry per never-answered
    dropped read, the lanes don't create one per bulk read; everything
    observable about in-flight traffic is covered by sent/received).
    """
    sim = cluster.sim
    switch = cluster.switch
    dp = switch.dataplane
    stats = dp.stats
    snap: Dict = {
        "sim.delivered": sim.delivered,
        "sim.lost": sim.lost,
        "sim.node_drops": sim.node_drops,
        "client.sent": client.sent,
        "client.received": client.received,
        "client.cache_hits": client.cache_hits,
        "client.retransmissions": client.retransmissions,
        "client.timeouts": client.timeouts,
        "client.stale_drops": client.stale_drops,
        "client.interval_sent": client._interval_sent,
        "client.interval_received": client._interval_received,
        "client.latencies": list(client.latencies),
        "switch.processed": switch.processed,
        "switch.forwarded": switch.forwarded,
        "dataplane.cache_hits": dp.cache_hits,
        "dataplane.cache_misses": dp.cache_misses,
        "dataplane.writes_seen": dp.writes_seen,
        "dataplane.invalidations": dp.invalidations,
        "dataplane.updates_received": dp.updates_received,
        "dataplane.contents_version": dp.contents_version,
        "dataplane.cache_size": dp.cache_size(),
        "stats.reports": stats.reports,
        "stats.resets": stats.resets,
        "sampler.observed": stats.sampler.observed,
        "sampler.sampled": stats.sampler.sampled,
        "digests.hits": stats.digests.hits,
        "digests.misses": stats.digests.misses,
        "trace.digest": trace.digest(),
        # Per-key hit counters of the cached set (key -> register value).
        "cache.key_counters": sorted(
            (key.hex(), dp.counter_of(key)) for key in switch.cached_keys()),
    }
    # Layout-level registers and counters (for the paper geometry: the
    # lookup-table hit/miss split and the per-pipe status/value registers,
    # under the same key names as before the geometry seam), plus the
    # layout's own SRAM self-audit so a mis-accounted geometry diverges
    # from the truthful reference in a named field.
    snap.update(dp.layout.snapshot_fields())
    snap["layout.sram_audit"] = dp.layout.sram_audit()
    ctl = cluster.controller
    if ctl is not None:
        snap.update({
            "controller.rounds": ctl.rounds,
            "controller.reports_received": ctl.reports_received,
            "controller.insertions": ctl.insertions,
            "controller.evictions": ctl.evictions,
            "controller.rejections": ctl.rejections,
        })
    for sid in sorted(cluster.servers):
        srv = cluster.servers[sid]
        snap[f"server{sid}.received"] = srv.received
        snap[f"server{sid}.processed"] = srv.processed
        snap[f"server{sid}.drops"] = srv.drops
        snap[f"server{sid}.queued"] = srv._queued
        snap[f"server{sid}.busy_until"] = srv._busy_until
        snap[f"server{sid}.store.gets"] = srv.store.gets
        snap[f"server{sid}.store.puts"] = srv.store.puts
        snap[f"server{sid}.store.core_ops"] = list(srv.store.core_ops)
    # Additional workload clients (client-0 keys keep their unprefixed
    # names so single-client goldens stay comparable across versions).
    extra = [c for c in cluster.clients
             if isinstance(c, type(client)) and c is not client]
    for i, cl in enumerate(extra, start=1):
        snap[f"client{i}.sent"] = cl.sent
        snap[f"client{i}.received"] = cl.received
        snap[f"client{i}.cache_hits"] = cl.cache_hits
        snap[f"client{i}.retransmissions"] = cl.retransmissions
        snap[f"client{i}.timeouts"] = cl.timeouts
        snap[f"client{i}.stale_drops"] = cl.stale_drops
        snap[f"client{i}.interval_sent"] = cl._interval_sent
        snap[f"client{i}.interval_received"] = cl._interval_received
        snap[f"client{i}.latencies"] = list(cl.latencies)
    for node_id in sorted(cluster.servers) + [c.node_id
                                              for c in [client] + extra]:
        link = cluster.link_to(node_id)
        snap[f"link{node_id}.transmitted"] = link.transmitted
        snap[f"link{node_id}.dropped"] = link.dropped
        snap[f"link{node_id}.duplicated"] = link.duplicated
        snap[f"link{node_id}.reordered"] = link.reordered
    if engine is not None:
        # Engine-side telemetry (batched runs only, excluded from the
        # scalar/batched diff): lane coverage and attributed fallbacks,
        # surfaced in perf reports so a silent full-scalarization
        # regression fails the bench gate instead of just slowing it.
        snap["fastpath.coverage"] = engine.coverage()
        snap["fastpath.fallbacks"] = dict(engine.fallback_reasons)
    return snap


def diff_snapshots(a: Dict, b: Dict) -> List[str]:
    """Human-readable list of unequal fields (empty = byte-identical)."""
    out = []
    for key in sorted(set(a) | set(b)):
        # Runner/engine metadata, batched-only: fast-forward epoch count
        # and lane-coverage telemetry are about *how* a run executed, not
        # what it computed, so they never participate in equivalence.
        if key == "ff_epochs" or key.startswith("fastpath."):
            continue
        va, vb = a.get(key), b.get(key)
        if key.endswith(".latencies"):
            la, lb = va or [], vb or []
            if len(la) != len(lb):
                out.append(f"{key}: length {len(la)} != {len(lb)}")
            else:
                bad = [i for i, (x, y) in enumerate(zip(la, lb)) if x != y]
                if bad:
                    out.append(f"{key}: {len(bad)} samples differ "
                               f"(first at {bad[0]})")
            continue
        if va != vb:
            out.append(f"{key}: {va!r} != {vb!r}")
    return out


# -- steady-state fast-forward ---------------------------------------------------


def rack_equilibrium(cluster: Cluster, workload: Workload,
                     mask: Optional[np.ndarray] = None) -> RateSimResult:
    """Rate-equilibrium operating point of *cluster* under *workload*.

    Uses the cluster's *actual* server-id partitioning (the internal
    ``partition_vector`` hashes against ``range(n)`` and assigns items to
    different owners).
    """
    spec = workload.spec
    part = partition_vector_for_servers(
        spec.num_keys, tuple(cluster.plan.server_ids))
    if mask is None:
        mask = CacheContentsMask(cluster.switch, workload.keyspace).mask()
    config = RateSimConfig(num_servers=cluster.config.num_servers,
                           server_rate=cluster.config.server_rate,
                           write_ratio=spec.write_ratio)
    write_probs = (workload.write_item_probs()
                   if spec.write_ratio > 0 else None)
    return simulate(workload.read_item_probs(), mask, config,
                    write_probs=write_probs, part_vector=part)


class SimCoreRunner:
    """Drives a rack through the lanes engine with optional fast-forward.

    Epochs are the controller's statistics interval.  An epoch is handed to
    the equilibrium model only when *all* of these held:

    * the rack is clean (no fault window, no observers) — enforced both at
      the decision point and by construction, since a fault opening would
      have put the engine in scalar mode;
    * the coherence plane is idle: no server has pending cache updates or
      blocked writes (mixed workloads fast-forward through the
      write-ratio-aware equilibrium; an in-flight update round trip does
      not);
    * the controller is quiet: no pending hot-key reports and the cache
      contents unchanged for ``quiescent_epochs`` consecutive epochs.

    A fast-forwarded epoch synthesizes the aggregate counters from the
    equilibrium (per-server load split by the real partition vector),
    feeds a sampled key stream through the *real* statistics machinery
    (exactly like the hybrid emulation), and still runs the control-plane
    events, so the controller can end quiescence and drop the runner back
    into event mode at the next boundary.  Latency samples are not
    synthesized — fast-forwarded runs are throughput-accurate, not
    latency-complete, and their snapshots are not byte-comparable.
    """

    def __init__(self, cluster: Cluster, client, workload: Workload,
                 trace: Optional[DeliveryTrace] = None,
                 fast_forward: bool = False,
                 quiescent_epochs: int = 2,
                 samples_per_epoch: int = 2_000):
        self.cluster = cluster
        self.client = client
        self.workload = workload
        self.engine = FastPathEngine(cluster, client, trace=trace)
        self.fast_forward = fast_forward
        self.quiescent_epochs = quiescent_epochs
        self.samples_per_epoch = samples_per_epoch
        self.epoch = cluster.config.stats_interval
        self.ff_epochs = 0
        self._mask = CacheContentsMask(cluster.switch, workload.keyspace)
        self._version_history: List[int] = []
        self._part = None

    def run(self, duration: float) -> None:
        sim = self.cluster.sim
        t_end = sim.now + duration
        if not self.fast_forward:
            self.engine.run_until(t_end)
            return
        while sim.now < t_end:
            k = int(np.floor(sim.now / self.epoch)) + 1
            boundary = min(t_end, k * self.epoch)
            if (boundary - sim.now >= self.epoch * 0.999
                    and self.quiescent()):
                self._fast_forward_epoch(boundary)
            else:
                self.engine.run_until(boundary)
            self._version_history.append(self._mask.version)

    def quiescent(self) -> bool:
        """True when the next epoch is eligible for equilibrium handoff."""
        if self.engine.fault_window_open():
            return False
        for srv in self.cluster.servers.values():
            if srv.shim.pending_updates or srv.shim.blocked_writes:
                return False
        ctl = self.cluster.controller
        if ctl is not None and ctl.pending_reports() > 0:
            return False
        hist = self._version_history
        k = self.quiescent_epochs
        if len(hist) < k:
            return False
        recent = hist[-k:] + [self._mask.version]
        return len(set(recent)) == 1

    # -- one equilibrium epoch ----------------------------------------------------

    def _fast_forward_epoch(self, t_to: float) -> None:
        cluster, client = self.cluster, self.client
        sim = cluster.sim
        spec = self.workload.spec
        if self._part is None:
            self._part = partition_vector_for_servers(
                spec.num_keys, tuple(cluster.plan.server_ids))
        # Complete the in-flight pipeline before jumping the clock so no
        # lane entry is left carrying a pre-jump timestamp.
        self.engine.drain_lanes()
        eq = rack_equilibrium(cluster, self.workload, mask=self._mask.mask())

        # The open-loop clients are below saturation or they aren't;
        # either way the delivered fraction is the equilibrium's.
        total_rate = sum(st.client.rate for st in self.engine._states)
        n = self.engine.sends_in_window(t_to)
        scale = min(1.0, eq.throughput / total_rate) if n else 1.0
        w = spec.write_ratio
        nw = int(round(n * w))
        nr = n - nw
        reads = int(round(nr * scale))
        writes = int(round(nw * scale))
        # eq.hit_ratio is hits over *all* served queries (writes included),
        # so it scales the whole delivered count; the hits themselves are
        # still reads.
        hits = int(round((reads + writes) * eq.hit_ratio))
        misses = reads - hits
        write_probs = self.workload.write_item_probs() if writes else None
        cached_w = int(round(writes * cached_write_fraction(
            write_probs, self._mask.mask()))) if writes else 0
        plain_w = writes - cached_w
        delivered = reads + writes

        # Per-client attribution: each client gets its rate-proportional
        # share (the remainder lands on client 0).
        acc_n = acc_d = acc_h = 0
        states = self.engine._states
        for st in reversed(states):
            if st is states[0]:
                n_i, d_i, h_i = n - acc_n, delivered - acc_d, hits - acc_h
            else:
                frac = st.client.rate / total_rate
                n_i = int(round(n * frac))
                d_i = int(round(delivered * frac))
                h_i = int(round(hits * frac))
                acc_n += n_i
                acc_d += d_i
                acc_h += h_i
            cl = st.client
            cl.sent += n_i
            cl._interval_sent += n_i
            cl.received += d_i
            cl._interval_received += d_i
            cl.cache_hits += h_i
        # Hop counts per query class: a cache hit bounces at the switch
        # (2 deliveries), a miss takes the full round trip (4), an
        # uncached write likewise (4), a cached write adds the
        # invalidation's update + ack legs (6).
        sim.delivered += hits * 2 + misses * 4 + plain_w * 4 + cached_w * 6
        sim.lost += n - delivered
        switch = cluster.switch
        # Query + server reply transit the switch; a cached write's update
        # is processed (its ack is generated in-switch, not processed).
        switch.processed += delivered * 2 - hits + cached_w
        switch.forwarded += delivered * 2 - hits + cached_w
        dp = switch.dataplane
        dp.cache_hits += hits
        dp.cache_misses += misses
        dp.writes_seen += writes
        dp.invalidations += cached_w
        dp.updates_received += cached_w

        # Spread misses over servers with the equilibrium's per-server
        # load; writes by each owner's share of the write distribution.
        sids = cluster.plan.server_ids
        load = eq.per_server_load
        total = load.sum()
        if misses and total > 0:
            share = np.floor(load / total * misses).astype(int)
            share[int(np.argmax(load))] += misses - int(share.sum())
            for idx, sid in enumerate(sids):
                srv = cluster.servers[sid]
                k = int(share[idx])
                srv.received += k
                srv.processed += k
                srv.store.gets += k
        if writes:
            wload = np.array([float(write_probs[self._part == idx].sum())
                              for idx in range(len(sids))])
            wtotal = wload.sum()
            if wtotal > 0:
                wshare = np.floor(wload / wtotal * writes).astype(int)
                wshare[int(np.argmax(wload))] += writes - int(wshare.sum())
                for idx, sid in enumerate(sids):
                    srv = cluster.servers[sid]
                    k = int(wshare[idx])
                    srv.received += k
                    srv.processed += k
                    srv.store.puts += k

        # Real statistics + reporting, as in the hybrid emulation: the
        # controller keeps seeing a faithful sampled stream, so it can end
        # the quiescent phase and pull us back into event mode.
        count = self.samples_per_epoch
        ranks = self.workload._read_gen.sample(count)
        items = self.workload.popularity.items_at(ranks)
        keys = self.workload.keyspace.keys(items)
        report = None
        if cluster.controller is not None:
            report = cluster.controller.report_hot_key
        for hot in dp.observe_reads(keys):
            if report is not None:
                report(hot)

        # Skip the per-send event work: advance every client's send clock
        # analytically and let the control-plane events run the epoch out.
        self.engine.advance_send_clock(t_to)
        self.ff_epochs += 1
        sim.events.run_until(t_to)
        self.engine.note_time_jump()
