"""Runtime measurement helpers for discrete-event runs."""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import ConfigurationError


class ThroughputMeter:
    """Counts completions into fixed-width time bins.

    Attach to a client (or anything that can call :meth:`record`) to get a
    per-interval delivered-throughput series — what Fig 11 plots.
    """

    def __init__(self, bin_width: float = 0.1):
        if bin_width <= 0:
            raise ConfigurationError("bin_width must be positive")
        self.bin_width = bin_width
        self._bins: List[int] = []

    def record(self, time: float, count: int = 1) -> None:
        idx = int(time / self.bin_width)
        if idx >= len(self._bins):
            self._bins.extend([0] * (idx + 1 - len(self._bins)))
        self._bins[idx] += count

    def series(self) -> List[Tuple[float, float]]:
        """(bin start time, queries/second) pairs."""
        return [
            (i * self.bin_width, count / self.bin_width)
            for i, count in enumerate(self._bins)
        ]

    def rates(self) -> List[float]:
        return [count / self.bin_width for count in self._bins]

    def rebinned(self, factor: int) -> List[float]:
        """Average consecutive bins (the paper shows 1 s and 10 s curves)."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        out = []
        for i in range(0, len(self._bins), factor):
            chunk = self._bins[i : i + factor]
            out.append(sum(chunk) / (len(chunk) * self.bin_width))
        return out
