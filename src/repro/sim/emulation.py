"""Hybrid emulation for dynamic workloads (§7.1 "Server emulation", §7.4).

The paper emulates 128 storage servers with drop queues to study *transient*
behaviour: how fast the cache catches up when popularity shifts.  A pure
packet-level run of that setup is prohibitively slow in Python, so this
module drives the *real* control machinery — the data plane's statistics
(sampler, Count-Min sketch, Bloom filter), the heavy-hitter reports, and the
controller's sample-compare-evict-insert loop against real storage servers —
with the *data path* replaced by the rate-equilibrium model: each time step
computes the saturated throughput given the cache's current contents, and an
AIMD client chases it exactly like the paper's client does.

What is real: statistics data structures, hot-key reporting, cache
insert/evict through the switch data plane, value fetches with write
blocking, churn in the popularity map.  What is modelled: per-packet motion.
The throughput *dips and recoveries* in Fig 11 come from the cache lagging
the workload, which lives entirely in the real part.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

import numpy as np

from repro.client.dynamics import ChurnSchedule, PopularityMap
from repro.client.ratecontrol import AimdRateController
from repro.client.workload import Workload, WorkloadSpec
from repro.core.controller import CacheController
from repro.core.switch import NetCacheSwitch
from repro.errors import ConfigurationError
from repro.kvstore.partition import HashPartitioner
from repro.kvstore.server import StorageServer
from repro.net.simulator import Simulator
from repro.net.topology import make_rack_plan
from repro.sim.ratesim import CacheContentsMask, RateSimConfig, simulate


@dataclasses.dataclass
class EmulationConfig:
    """Parameters of one dynamics run (defaults follow §7.4, scaled)."""

    num_keys: int = 100_000
    skew: float = 0.99
    num_servers: int = 128
    #: emulated per-server rate; the paper scales by 64, we keep the same
    #: relative shape at any absolute rate.
    server_rate: float = 156_250.0  # 10 MQPS / 64
    cache_items: int = 10_000
    churn_kind: str = "hot-in"
    churn_n: int = 200
    churn_interval: float = 10.0
    duration: float = 60.0
    step: float = 0.1
    stats_interval: float = 1.0
    #: statistics samples drawn per step (the sampled-query stream).
    samples_per_step: int = 4_000
    hot_threshold: int = 8
    controller_sample_size: int = 32
    #: simulated times at which the switch reboots with an empty cache
    #: (§3's failure story; the cache must refill from HH reports).
    reboot_times: tuple = ()
    #: (start, end) windows during which the controller is stalled: no
    #: update rounds and no statistics resets (missed 1-second clears).
    controller_stall_windows: tuple = ()
    #: cache geometry for the switch ("paper", "setassoc", "orbit").  The
    #: sampled statistics stream is fed through ``observe_reads``, which
    #: rides every layout's vectorized batch probe (``classify_reads``) —
    #: non-paper geometries run the emulation natively, not via a scalar
    #: per-key loop.
    layout: str = "paper"
    #: value stages for the switch (fewer stages narrow an Orbit segment,
    #: mirroring the :class:`~repro.sim.cluster.ClusterConfig` knob).
    num_value_stages: int = 8
    seed: int = 0

    def __post_init__(self):
        if self.step <= 0 or self.duration <= 0:
            raise ConfigurationError("step and duration must be positive")


@dataclasses.dataclass
class EmulationResult:
    """Per-step trace of one dynamics run."""

    times: List[float]
    throughput: List[float]          # delivered queries/second per step
    offered: List[float]             # client AIMD rate per step
    cache_size: List[int]
    insertions: List[int]            # cumulative controller insertions
    churn_times: List[float]
    reboot_times: List[float] = dataclasses.field(default_factory=list)
    #: step times at which the controller was stalled.
    stall_times: List[float] = dataclasses.field(default_factory=list)

    def rebinned(self, bin_seconds: float) -> List[float]:
        """Average throughput over *bin_seconds* windows (Fig 11 overlays
        per-second and per-10-second curves)."""
        if not self.times:
            return []
        step = self.times[1] - self.times[0] if len(self.times) > 1 else 1.0
        per_bin = max(1, int(round(bin_seconds / step)))
        out = []
        for i in range(0, len(self.throughput), per_bin):
            chunk = self.throughput[i : i + per_bin]
            out.append(sum(chunk) / len(chunk))
        return out


class DynamicsEmulator:
    """Runs one churn scenario against the real cache-update machinery."""

    def __init__(self, config: EmulationConfig = EmulationConfig()):
        self.config = config
        spec = WorkloadSpec(num_keys=config.num_keys, read_skew=config.skew,
                            seed=config.seed)
        self.popularity = PopularityMap(config.num_keys, seed=config.seed)
        self.workload = Workload(spec, popularity=self.popularity)
        self.churn = ChurnSchedule(self.popularity, config.churn_kind,
                                   n=config.churn_n,
                                   top_m=config.cache_items,
                                   interval=config.churn_interval)

        # Real switch + servers + controller (control plane drives these;
        # the simulator exists only to satisfy node wiring).
        self.sim = Simulator()
        plan = make_rack_plan(config.num_servers, 1)
        self.partitioner = HashPartitioner(plan.server_ids)
        entries = max(16 * 1024, config.cache_items * 2)
        self.switch = NetCacheSwitch(
            plan.tor_id, num_pipes=2,
            ports_per_pipe=config.num_servers // 2 + 1,
            entries=entries, value_slots=entries,
            num_value_stages=config.num_value_stages,
            layout=config.layout,
        )
        self.switch.dataplane.stats.set_hot_threshold(config.hot_threshold)
        # samples_per_step already models the data plane's sampler; a
        # second sampling stage inside the statistics would double-count it.
        self.switch.dataplane.stats.set_sample_rate(1.0)
        self.sim.add_node(self.switch)
        self.servers: Dict[int, StorageServer] = {}
        for sid, port in plan.server_ports.items():
            server = StorageServer(sid, gateway=plan.tor_id,
                                   service_rate=config.server_rate)
            self.sim.add_node(server)
            self.sim.connect(plan.tor_id, sid)
            self.switch.attach_neighbor(port, sid)
            self.servers[sid] = server
        self.controller = CacheController(
            self.switch, self.partitioner, self.servers,
            cache_capacity=config.cache_items,
            sample_size=config.controller_sample_size,
        )
        self._load_stores()

        self.rate_config = RateSimConfig(num_servers=config.num_servers,
                                         server_rate=config.server_rate)
        self._rng = np.random.default_rng(config.seed + 7)
        # Caches invalidated by churn / cache-content changes.
        self._read_probs: Optional[np.ndarray] = None
        self._mask = CacheContentsMask(self.switch, self.workload.keyspace)

    def _load_stores(self) -> None:
        keyspace = self.workload.keyspace
        for item in range(self.config.num_keys):
            key = keyspace.key(item)
            self.servers[self.partitioner.server_for(key)].store.put(
                key, self.workload.value_for(key))

    # -- pieces of one step ------------------------------------------------------

    def _feed_statistics(self, delivered_rate: float) -> None:
        """Push a sampled batch of the current read stream through the real
        statistics path and report hot keys to the controller.

        Uses the data plane's batch entry point, so the per-step cost is a
        key-materialization pass plus a handful of numpy calls instead of
        ~8 hash computations per sampled query (bit-for-bit identical
        decisions; see docs/PERFORMANCE.md)."""
        count = self.config.samples_per_step
        ranks = self.workload._read_gen.sample(count)
        items = self.popularity.items_at(ranks)
        keys = self.workload.keyspace.keys(items)
        report = self.controller.report_hot_key
        for hot in self.switch.dataplane.observe_reads(keys):
            report(hot)

    def _saturated_throughput(self) -> float:
        if self._read_probs is None:
            self._read_probs = self.workload.read_item_probs()
        # Invalid entries (just-written keys) don't serve; with a read-only
        # dynamics workload every cached key is valid.
        result = simulate(self._read_probs, self._mask.mask(),
                          self.rate_config)
        return result.throughput

    # -- main loop ------------------------------------------------------------------

    def run(self, warm: bool = True) -> EmulationResult:
        cfg = self.config
        if warm:
            self.controller.preload(self.workload.hottest_keys(cfg.cache_items))
        aimd = AimdRateController(
            initial_rate=cfg.num_servers * cfg.server_rate,
            max_rate=cfg.num_servers * cfg.server_rate * 50,
            increase=0.05, multiplicative_increase=1.3,
        )
        result = EmulationResult([], [], [], [], [], [])
        steps = int(round(cfg.duration / cfg.step))
        next_churn = cfg.churn_interval
        next_reset = cfg.stats_interval
        pending_reboots = sorted(cfg.reboot_times)
        for step_idx in range(steps):
            t = step_idx * cfg.step
            if pending_reboots and t >= pending_reboots[0]:
                pending_reboots.pop(0)
                self.switch.reboot()
                result.reboot_times.append(t)
            if t >= next_churn:
                self.churn.apply_once()
                self._read_probs = None  # popularity moved; rebuild probs
                result.churn_times.append(t)
                next_churn += cfg.churn_interval
            capacity = self._saturated_throughput()
            offered = aimd.rate
            delivered = min(offered, capacity)
            sent = offered * cfg.step
            received = delivered * cfg.step
            aimd.observe(int(sent), int(received))

            self._feed_statistics(delivered)
            stalled = any(start <= t < end
                          for start, end in cfg.controller_stall_windows)
            if stalled:
                result.stall_times.append(t)
            else:
                self.controller.update_round()
            if t >= next_reset:
                # A stalled controller misses the reset entirely; the next
                # one happens a full interval later (counters keep growing).
                if not stalled:
                    self.switch.reset_statistics()
                next_reset += cfg.stats_interval

            result.times.append(t)
            result.throughput.append(delivered)
            result.offered.append(offered)
            result.cache_size.append(self.switch.dataplane.cache_size())
            result.insertions.append(self.controller.insertions)
        return result


def run_dynamics(kind: str, duration: float = 40.0,
                 seed: int = 0, **overrides) -> EmulationResult:
    """Convenience wrapper: run one of the three §7.4 scenarios.

    ``hot-in`` uses the paper's 10-second churn period; ``random`` and
    ``hot-out`` churn every second.
    """
    interval = 10.0 if kind == "hot-in" else 1.0
    config = EmulationConfig(churn_kind=kind, churn_interval=interval,
                             duration=duration, seed=seed, **overrides)
    return DynamicsEmulator(config).run()
