"""Packet-level leaf-spine fabric with caches at both tiers (§5, Fig 10f).

The paper evaluates multi-rack scaling analytically and leaves the
mechanism as future work; this module builds the mechanism at packet level:
a spine switch running the NetCache program above several NetCache ToRs.
Queries enter at the spine; a spine cache hit turns around immediately, a
miss travels to the owning rack where the ToR may serve it, and only the
residual load reaches servers.

Coherence across tiers is conservative: a write invalidates the key at
*every* switch it traverses (the normal Algorithm 1 write path), and the
server's data-plane value update revalidates only its own ToR — a spine
entry stays invalid until the spine controller reinstalls it.  Stale data
is therefore impossible; spine entries merely lose hits after writes, the
safe end of the design space the paper leaves open.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional

from repro.client.api import NetCacheClient, SyncClient
from repro.client.workload import Workload
from repro.constants import LINK_LATENCY
from repro.core.controller import CacheController
from repro.core.switch import NetCacheSwitch
from repro.errors import ConfigurationError
from repro.kvstore.partition import HashPartitioner
from repro.kvstore.server import StorageServer
from repro.net.simulator import Simulator
from repro.net.topology import LeafSpinePlan, make_leaf_spine_plan


@dataclasses.dataclass
class FabricConfig:
    """Parameters of a packet-level leaf-spine deployment."""

    num_racks: int = 2
    servers_per_rack: int = 4
    num_clients: int = 1
    server_rate: float = 10_000.0
    server_queue_limit: Optional[int] = None
    leaf_cache_items: int = 32
    spine_cache_items: int = 32
    spine_cache: bool = True
    lookup_entries: int = 1024
    value_slots: int = 1024
    link_latency: float = LINK_LATENCY
    seed: int = 0

    def __post_init__(self):
        if self.num_racks <= 0 or self.servers_per_rack <= 0:
            raise ConfigurationError("fabric needs racks and servers")


class Fabric:
    """A live leaf-spine cluster: spine switch, ToRs, servers, clients."""

    def __init__(self, config: FabricConfig = FabricConfig()):
        self.config = config
        self.sim = Simulator()
        plan: LeafSpinePlan = make_leaf_spine_plan(
            config.num_racks, config.servers_per_rack, num_spines=1,
            num_clients=config.num_clients)
        self.plan = plan
        self.partitioner = HashPartitioner(plan.all_server_ids)

        def make_switch(node_id):
            switch = NetCacheSwitch(
                node_id, entries=config.lookup_entries,
                value_slots=config.value_slots, num_pipes=2,
                ports_per_pipe=max(4, config.servers_per_rack),
            )
            switch.dataplane.stats.set_sample_rate(1.0)
            return switch

        # Spine tier (single spine: deterministic routing).
        self.spine = make_switch(plan.spine_ids[0])
        self.sim.add_node(self.spine)

        # Racks.
        self.tors: List[NetCacheSwitch] = []
        self.servers: Dict[int, StorageServer] = {}
        for rack in plan.racks:
            tor = make_switch(rack.tor_id)
            self.sim.add_node(tor)
            self.tors.append(tor)
            for port, sid in enumerate(rack.server_ids):
                server = StorageServer(
                    sid, gateway=rack.tor_id,
                    service_rate=config.server_rate,
                    queue_limit=config.server_queue_limit)
                self.sim.add_node(server)
                self.sim.connect(rack.tor_id, sid,
                                 latency=config.link_latency)
                tor.attach_neighbor(port, sid)
                self.servers[sid] = server
            # Uplink: last port; unknown destinations go up.
            uplink_port = config.servers_per_rack
            self.sim.connect(plan.spine_ids[0], rack.tor_id,
                             latency=config.link_latency)
            tor.attach_neighbor(uplink_port, plan.spine_ids[0])
            tor.routing.default_port = uplink_port

        # Spine wiring: ToRs then clients; server routes go via their ToR.
        for port, rack in enumerate(plan.racks):
            self.spine.attach_neighbor(port, rack.tor_id)
            for sid in rack.server_ids:
                self.spine.add_remote_route(sid, via_neighbor=rack.tor_id)
        self.clients: List[NetCacheClient] = []
        for i, cid in enumerate(plan.client_ids):
            client = NetCacheClient(cid, gateway=plan.spine_ids[0],
                                    partitioner=self.partitioner)
            self.sim.add_node(client)
            self.sim.connect(plan.spine_ids[0], cid,
                             latency=config.link_latency)
            self.spine.attach_neighbor(config.num_racks + i, cid)
            self.clients.append(client)

        # Controllers: one per ToR over its rack, one for the spine over
        # everything (ports resolved through the ToR the server hangs off).
        self.leaf_controllers: List[CacheController] = []
        for tor, rack in zip(self.tors, plan.racks):
            rack_servers = {sid: self.servers[sid]
                            for sid in rack.server_ids}
            self.leaf_controllers.append(CacheController(
                tor, self.partitioner, rack_servers,
                cache_capacity=config.leaf_cache_items, seed=config.seed))
        self.spine_controller: Optional[CacheController] = None
        if config.spine_cache:
            self.spine_controller = CacheController(
                self.spine, self.partitioner, self.servers,
                cache_capacity=config.spine_cache_items,
                seed=config.seed + 1,
                port_resolver=self._spine_port_of_server)

    def _spine_port_of_server(self, server_id: int) -> int:
        rack = self.plan.rack_of_server(server_id)
        return self.spine.port_of(rack.tor_id)

    # -- setup helpers ----------------------------------------------------------

    def load_workload_data(self, workload: Workload) -> None:
        for item in range(workload.spec.num_keys):
            key = workload.keyspace.key(item)
            self.servers[self.partitioner.server_for(key)].store.put(
                key, workload.value_for(key))

    def warm_caches(self, workload: Workload) -> None:
        """Spine takes the globally hottest items; each leaf takes the
        hottest *remaining* items stored in its rack."""
        hot = workload.hottest_keys(
            self.config.spine_cache_items
            + self.config.leaf_cache_items * self.config.num_racks)
        spine_share = hot[: self.config.spine_cache_items]
        if self.spine_controller is not None:
            self.spine_controller.preload(spine_share)
            rest = hot[self.config.spine_cache_items :]
        else:
            rest = hot
        for controller, rack in zip(self.leaf_controllers, self.plan.racks):
            rack_keys = [k for k in rest
                         if self.partitioner.server_for(k)
                         in rack.server_ids]
            controller.preload(rack_keys)

    def sync_client(self, index: int = 0, timeout: float = 1.0) -> SyncClient:
        return SyncClient(self.clients[index], timeout=timeout)

    def run(self, seconds: float) -> None:
        self.sim.run_until(self.sim.now + seconds)

    # -- metrics -----------------------------------------------------------------

    def tier_hits(self) -> Dict[str, int]:
        return {
            "spine": self.spine.dataplane.cache_hits,
            "leaf": sum(t.dataplane.cache_hits for t in self.tors),
            "server": sum(s.processed for s in self.servers.values()),
        }
