"""From-scratch open-addressing hash table.

The paper's storage servers run "a simple (not optimized) in-memory key-value
store with TommyDS" (§6).  TommyDS is a C library we cannot import, so we
build the equivalent substrate: an open-addressing table with linear probing,
tombstone deletion, and load-factor-driven resizing.  The storage server and
the shim layer sit on top of this table rather than a Python ``dict`` so the
substrate is genuinely implemented, testable, and instrumentable (probe-length
statistics feed the server service-time model).
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sketch.hashing import hash_bytes

_EMPTY = 0
_FULL = 1
_TOMBSTONE = 2


class HashTable:
    """Open-addressing byte-string -> byte-string map with linear probing."""

    MIN_CAPACITY = 8

    def __init__(self, initial_capacity: int = 64, max_load: float = 0.7,
                 seed: int = 0xDB):
        if initial_capacity < 1:
            raise ConfigurationError("initial_capacity must be >= 1")
        if not 0.1 <= max_load < 1.0:
            raise ConfigurationError("max_load must be in [0.1, 1)")
        cap = self.MIN_CAPACITY
        while cap < initial_capacity:
            cap *= 2
        self._capacity = cap
        self._max_load = max_load
        self._seed = seed
        self._states: List[int] = [_EMPTY] * cap
        self._keys: List[Optional[bytes]] = [None] * cap
        self._values: List[Optional[bytes]] = [None] * cap
        self._size = 0
        self._occupied = 0  # FULL + TOMBSTONE
        self.total_probes = 0
        self.total_lookups = 0

    # -- internals -----------------------------------------------------------

    def _slot(self, key: bytes) -> int:
        return hash_bytes(key, self._seed) & (self._capacity - 1)

    def _find(self, key: bytes) -> Tuple[int, bool]:
        """Return (slot, found).  If not found, slot is the insertion point
        (first tombstone seen, else first empty)."""
        idx = self._slot(key)
        first_tombstone = -1
        probes = 0
        while True:
            probes += 1
            state = self._states[idx]
            if state == _EMPTY:
                self.total_probes += probes
                self.total_lookups += 1
                if first_tombstone >= 0:
                    return first_tombstone, False
                return idx, False
            if state == _TOMBSTONE:
                if first_tombstone < 0:
                    first_tombstone = idx
            elif self._keys[idx] == key:
                self.total_probes += probes
                self.total_lookups += 1
                return idx, True
            idx = (idx + 1) & (self._capacity - 1)

    def _resize(self, new_capacity: int) -> None:
        old = [
            (self._keys[i], self._values[i])
            for i in range(self._capacity)
            if self._states[i] == _FULL
        ]
        self._capacity = new_capacity
        self._states = [_EMPTY] * new_capacity
        self._keys = [None] * new_capacity
        self._values = [None] * new_capacity
        self._size = 0
        self._occupied = 0
        for key, value in old:
            self.put(key, value)

    def _maybe_grow(self) -> None:
        if self._occupied + 1 > int(self._capacity * self._max_load):
            # Double if genuinely full; same size rebuild clears tombstones.
            if self._size + 1 > int(self._capacity * self._max_load * 0.75):
                self._resize(self._capacity * 2)
            else:
                self._resize(self._capacity)

    # -- public API ------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        self._maybe_grow()
        idx, found = self._find(key)
        if found:
            self._values[idx] = value
            return False
        if self._states[idx] != _TOMBSTONE:
            self._occupied += 1
        self._states[idx] = _FULL
        self._keys[idx] = key
        self._values[idx] = value
        self._size += 1
        return True

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value or None."""
        idx, found = self._find(key)
        return self._values[idx] if found else None

    def delete(self, key: bytes) -> bool:
        """Remove the key; returns True if it was present."""
        idx, found = self._find(key)
        if not found:
            return False
        self._states[idx] = _TOMBSTONE
        self._keys[idx] = None
        self._values[idx] = None
        self._size -= 1
        return True

    def contains(self, key: bytes) -> bool:
        _, found = self._find(key)
        return found

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for i in range(self._capacity):
            if self._states[i] == _FULL:
                yield self._keys[i], self._values[i]

    def keys(self) -> Iterator[bytes]:
        for k, _ in self.items():
            yield k

    def clear(self) -> None:
        self._capacity = self.MIN_CAPACITY
        self._states = [_EMPTY] * self._capacity
        self._keys = [None] * self._capacity
        self._values = [None] * self._capacity
        self._size = 0
        self._occupied = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    @property
    def load_factor(self) -> float:
        return self._size / self._capacity

    def mean_probe_length(self) -> float:
        """Average probes per lookup since construction (diagnostic)."""
        if not self.total_lookups:
            return 0.0
        return self.total_probes / self.total_lookups

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.contains(key)
