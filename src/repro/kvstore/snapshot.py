"""Store snapshots: dump and restore a server's contents.

The paper's servers are volatile (in-memory, no replication — §5 notes
fault tolerance is out of scope), but experiment setups benefit from
persistable state: load a 10^6-item data set once, snapshot it, and restore
it per run instead of regenerating.  The format is length-prefixed binary::

    magic "NCSS" | version u8=1 | count u64
    repeat count: key_len u16 | key | value_len u32 | value

Snapshots are backend-agnostic (they capture key-value pairs, not table
layout) and verify a checksum on restore.
"""

from __future__ import annotations

import struct
from pathlib import Path
from typing import Union

from repro.errors import PacketFormatError
from repro.kvstore.store import KVStore
from repro.sketch.hashing import hash_bytes

_MAGIC = b"NCSS"
_HEAD = struct.Struct("!4sBQ")
_KLEN = struct.Struct("!H")
_VLEN = struct.Struct("!I")
_SUM = struct.Struct("!Q")


def save_store(store: KVStore, path: Union[str, Path]) -> int:
    """Write every item of *store* to *path*; returns items written."""
    items = []
    for shard in store._shards:
        items.extend(shard.items())
    checksum = 0
    with open(path, "wb") as fh:
        fh.write(_HEAD.pack(_MAGIC, 1, len(items)))
        for key, value in items:
            fh.write(_KLEN.pack(len(key)) + key)
            fh.write(_VLEN.pack(len(value)) + value)
            checksum ^= hash_bytes(key, 1) ^ hash_bytes(value, 2)
        fh.write(_SUM.pack(checksum & 0xFFFFFFFFFFFFFFFF))
    return len(items)


def load_store(path: Union[str, Path], store: KVStore) -> int:
    """Restore a snapshot into *store* (on top of existing contents);
    returns items loaded.  Raises on corruption."""
    with open(path, "rb") as fh:
        head = fh.read(_HEAD.size)
        try:
            magic, version, count = _HEAD.unpack(head)
        except struct.error as exc:
            raise PacketFormatError("truncated snapshot header") from exc
        if magic != _MAGIC:
            raise PacketFormatError("not a store snapshot")
        if version != 1:
            raise PacketFormatError(f"unsupported snapshot version {version}")
        checksum = 0
        for _ in range(count):
            kraw = fh.read(_KLEN.size)
            try:
                (klen,) = _KLEN.unpack(kraw)
                key = fh.read(klen)
                (vlen,) = _VLEN.unpack(fh.read(_VLEN.size))
                value = fh.read(vlen)
            except struct.error as exc:
                raise PacketFormatError("truncated snapshot entry") from exc
            if len(key) != klen or len(value) != vlen:
                raise PacketFormatError("truncated snapshot entry")
            store.put(key, value)
            checksum ^= hash_bytes(key, 1) ^ hash_bytes(value, 2)
        tail = fh.read(_SUM.size)
        try:
            (expected,) = _SUM.unpack(tail)
        except struct.error as exc:
            raise PacketFormatError("missing snapshot checksum") from exc
        if expected != checksum & 0xFFFFFFFFFFFFFFFF:
            raise PacketFormatError("snapshot checksum mismatch")
    return count


def clone_store(store: KVStore, num_cores: int = None,
                backend: str = None) -> KVStore:
    """In-memory copy, optionally onto a different sharding/backend."""
    clone = KVStore(
        num_cores=num_cores if num_cores is not None else store.num_cores,
        max_value_size=store.max_value_size,
        backend=backend if backend is not None else store.backend,
    )
    for shard in store._shards:
        for key, value in shard.items():
            clone.put(key, value)
    return clone
