"""Storage server node for the discrete-event simulator.

Models one rack server: a NIC-attached queue in front of a fixed service
rate, the key-value store, and the shim agent.  Two queueing modes support
the paper's two methodologies:

* unbounded FIFO (server rotation, §7.3): latency grows when offered load
  exceeds the service rate, reproducing the Fig 10(c) saturation behaviour;
* bounded drop-tail queue (server emulation, §7.4): excess queries are
  dropped, and the client's rate controller reads the loss rate.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.constants import SERVER_RATE
from repro.errors import ConfigurationError
from repro.net.events import Event
from repro.net.packet import Packet
from repro.net.simulator import Node
from repro.kvstore.shim import ServerShim
from repro.kvstore.store import KVStore


class StorageServer(Node):
    """A simulated storage server running the KV store behind the shim.

    Parameters
    ----------
    node_id:
        Simulator node id.
    gateway:
        Node id of the directly-attached ToR switch.
    service_rate:
        Queries/second one server sustains (paper: 10 MQPS, §6).
    queue_limit:
        Maximum queued queries; ``None`` models an unbounded FIFO, an
        integer models the emulation drop queue (§7.1).
    num_cores:
        Per-core shards in the store.
    """

    def __init__(self, node_id: int, gateway: int,
                 service_rate: float = SERVER_RATE,
                 queue_limit: Optional[int] = None,
                 num_cores: int = 16):
        super().__init__(node_id)
        if service_rate <= 0:
            raise ConfigurationError("service_rate must be positive")
        if queue_limit is not None and queue_limit < 1:
            raise ConfigurationError("queue_limit must be >= 1 or None")
        self.gateway = gateway
        self.service_rate = service_rate
        self.service_time = 1.0 / service_rate
        self.queue_limit = queue_limit
        self.store = KVStore(num_cores=num_cores)
        self.shim = ServerShim(self, self.store)
        self._busy_until = 0.0
        self._queued = 0
        self.received = 0
        self.processed = 0
        self.drops = 0

    # -- simulator node interface ------------------------------------------------

    def handle_packet(self, pkt: Packet) -> None:
        self.received += 1
        now = self.sim.now
        queue_wait = max(0.0, self._busy_until - now)
        if self.queue_limit is not None and self._queued >= self.queue_limit:
            self.drops += 1
            return
        start = now + queue_wait
        self._busy_until = start + self.service_time
        self._queued += 1
        self.sim.schedule(self._busy_until - now, self._complete, pkt)

    def _complete(self, pkt: Packet) -> None:
        self._queued -= 1
        self.processed += 1
        self.shim.process(pkt)

    # -- transport used by the shim ------------------------------------------------

    def send_reply(self, pkt: Packet) -> None:
        """Send a reply toward the client via the ToR."""
        self.sim.transmit(self.node_id, self.gateway, pkt)

    def send_to_gateway(self, pkt: Packet) -> None:
        """Send a packet (e.g. CACHE_UPDATE) to the directly-attached ToR."""
        self.sim.transmit(self.node_id, self.gateway, pkt)

    def schedule(self, delay: float, callback: Callable, *args) -> Event:
        return self.sim.schedule(delay, callback, *args)

    # -- control-plane API used by the controller (§4.3) ----------------------------

    def fetch_for_insertion(self, key: bytes) -> Optional[bytes]:
        """Begin a controller insertion: block writes, return current value."""
        return self.shim.begin_insertion(key)

    def finish_insertion(self, key: bytes) -> None:
        """Controller finished inserting *key*; unblock writes."""
        self.shim.end_insertion(key)

    def abort_insertion(self, key: bytes) -> None:
        """Controller abandoned an insertion (lease expired); unblock
        writes without installing anything."""
        self.shim.abort_insertion(key)

    # -- state loading (experiment setup) ---------------------------------------------

    def load(self, items) -> None:
        """Bulk-load (key, value) pairs without going through the network."""
        for key, value in items:
            self.store.put(key, value)

    @property
    def queue_depth(self) -> int:
        return self._queued

    def utilization(self, elapsed: float) -> float:
        """Fraction of *elapsed* time spent serving queries."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.processed * self.service_time / elapsed)
