"""Server agent shim (§3 "Storage servers", §4.3, §6).

The shim sits between NetCache packets and the key-value store API and owns
the server side of the coherence protocol:

* uncached reads/writes: straight translation to store calls;
* writes to *cached* keys (the switch rewrote the op to ``PUT_CACHED`` /
  ``DELETE_CACHED`` after invalidating its copy): the store is updated
  atomically, the client reply is sent immediately, and a ``CACHE_UPDATE``
  carrying the new value is pushed to the switch with retry-until-ack
  reliability;
* subsequent writes to a key with an in-flight switch update are *blocked*
  (queued) until the ack confirms the switch holds the new value;
* controller-driven insertions also block writes to the key for their
  duration (§4.3 "Cache Update").

Two reliability mechanisms extend the paper's protocol:

* **write dedup** — retried client writes carry an idempotency token; a
  bounded :class:`~repro.reliability.dedup.DedupWindow` ensures each
  tokened write applies exactly once and late retries just get the reply
  re-sent;
* **degraded mode** — when a switch cache update exhausts its retry budget
  the shim no longer raises out of a timer callback; the key enters a
  per-key *write-around* mode (writes apply and reply without pushing
  updates), blocked writes drain, and the controller is asked to evict the
  key.  :meth:`clear_degraded` recovers the key once the eviction is
  acknowledged.

The shim is transport-agnostic: it talks to the network through the owning
:class:`~repro.kvstore.server.StorageServer`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.errors import CoherenceError
from repro.kvstore.store import KVStore
from repro.net.packet import Packet, make_cache_update
from repro.net.protocol import Op, REPLY_FOR, WRITE_OPS
from repro.obs import runtime as _obs
from repro.reliability.dedup import DedupState, DedupWindow

#: Retransmission timeout for switch cache updates (seconds).  The paper's
#: mechanism is "light-weight high-performance reliable packet" (§6); a short
#: RTO fits intra-rack RTTs.
UPDATE_RTO = 100e-6

#: Give up after this many retransmissions and surface a coherence error;
#: in practice the ToR link would have failed long before.
MAX_UPDATE_RETRIES = 50


class _PendingUpdate:
    """State of one in-flight switch cache update."""

    __slots__ = ("key", "value", "version", "retries", "timer", "blocked",
                 "started_at")

    def __init__(self, key: bytes, value: Optional[bytes], version: int):
        self.key = key
        self.value = value
        self.version = version
        self.retries = 0
        self.timer = None
        self.blocked: List[Packet] = []
        #: observability clock reading at first transmission (None when no
        #: session is live); used for the update-RTT histogram.
        self.started_at: Optional[float] = None


class ServerShim:
    """Coherence + translation layer for one storage server."""

    def __init__(self, server: "StorageServerLike", store: KVStore):
        self.server = server
        self.store = store
        #: per-instance retry budget; chaos runs raise these so a partition
        #: longer than MAX_UPDATE_RETRIES * UPDATE_RTO is survivable.
        self.update_rto = UPDATE_RTO
        self.max_update_retries = MAX_UPDATE_RETRIES
        self._pending: Dict[bytes, _PendingUpdate] = {}
        self._inserting: Dict[bytes, List[Packet]] = {}
        self._versions: Dict[bytes, int] = {}
        self.updates_sent = 0
        self.updates_acked = 0
        self.retransmissions = 0
        self.writes_blocked = 0
        #: exactly-once window for tokened (retried) writes.
        self.dedup = DedupWindow()
        #: keys in write-around mode after cache-update retry exhaustion.
        self._degraded: Set[bytes] = set()
        self.degraded_entries = 0
        self.degraded_recovered = 0
        self.insertion_aborts = 0
        #: called as fn(server_node_id, key) when a key enters degraded
        #: mode (the cluster wires this to the controller, which evicts the
        #: key and acks recovery).
        self.degraded_handler: Optional[Callable[[int, bytes], None]] = None
        #: when True, record per-token apply counts (chaos invariants read
        #: this to assert exactly-once effect under retries).
        self.track_applies = False
        self.token_applies: Dict[Tuple[int, int], int] = {}

    # -- query entry point ---------------------------------------------------

    def process(self, pkt: Packet) -> None:
        """Handle one NetCache query delivered by the network.

        Tokened writes pass through the dedup window first: an already
        applied token gets its reply re-sent without touching the store, a
        still-queued token's retry is dropped (the queued original will be
        answered when it drains).
        """
        if pkt.token is not None and pkt.op in WRITE_OPS:
            entry = self.dedup.lookup(pkt.src, pkt.token)
            if entry is not None:
                obs = _obs.ACTIVE
                if obs is not None:
                    obs.shim_dedup_hits.inc()
                state, reply_op = entry
                if state is DedupState.APPLIED:
                    self.server.send_reply(pkt.make_reply(Op(reply_op)))
                return
        self._dispatch(pkt)

    def _dispatch(self, pkt: Packet) -> None:
        """Route one query to its handler (internal re-entry point: drained
        blocked writes come back through here, *not* ``process``, so they
        are not mistaken for duplicates of themselves)."""
        if pkt.op == Op.GET:
            self._handle_get(pkt)
        elif pkt.op in (Op.PUT, Op.DELETE):
            self._traced_write(self._handle_uncached_write, pkt)
        elif pkt.op in (Op.PUT_CACHED, Op.DELETE_CACHED):
            self._traced_write(self._handle_cached_write, pkt)
        elif pkt.op == Op.CACHE_UPDATE_ACK:
            self._handle_ack(pkt)
        else:
            raise CoherenceError(f"server got unexpected op {pkt.op!r}")

    @staticmethod
    def _traced_write(handler, pkt: Packet) -> None:
        obs = _obs.ACTIVE
        if obs is not None:
            with obs.tracer.span("shim.handle_write"):
                handler(pkt)
        else:
            handler(pkt)

    # -- reads -----------------------------------------------------------------

    def _handle_get(self, pkt: Packet) -> None:
        value = self.store.get(pkt.key)
        self.server.send_reply(pkt.make_reply(Op.GET_REPLY, value=value))

    # -- writes ------------------------------------------------------------------

    def _handle_uncached_write(self, pkt: Packet) -> None:
        # A write may still need blocking: the controller might be inserting
        # this key right now (§4.3), or an earlier cached write's update may
        # be in flight while the lookup entry was already invalidated.
        if self._must_block(pkt.key):
            self.writes_blocked += 1
            self._block(pkt)
            return
        self._apply_write(pkt)
        self.server.send_reply(pkt.make_reply(REPLY_FOR[pkt.op]))

    def _handle_cached_write(self, pkt: Packet) -> None:
        if self._must_block(pkt.key):
            self.writes_blocked += 1
            self._block(pkt)
            return
        self._apply_write(pkt)
        # Reply to the client immediately -- the paper's optimization over
        # standard write-through (§4.3).
        self.server.send_reply(pkt.make_reply(REPLY_FOR[pkt.op]))
        if pkt.key in self._degraded:
            # Write-around: the switch copy is already invalid and the
            # controller has been asked to evict the key; pushing another
            # update would just fail the same way.
            return
        if pkt.op == Op.PUT_CACHED:
            self._start_update(pkt.key, self.store.get(pkt.key))
        # For DELETE_CACHED the switch copy stays invalid until the
        # controller evicts the key; no data-plane update carries a value.

    def _apply_write(self, pkt: Packet) -> None:
        if pkt.op in (Op.PUT, Op.PUT_CACHED):
            self.store.put(pkt.key, pkt.value or b"")
        else:
            self.store.delete(pkt.key)
        if pkt.token is not None:
            self.dedup.note_applied(pkt.src, pkt.token,
                                    int(REPLY_FOR[pkt.op]))
            if self.track_applies:
                tid = (pkt.src, pkt.token)
                self.token_applies[tid] = self.token_applies.get(tid, 0) + 1

    def _must_block(self, key: bytes) -> bool:
        return key in self._pending or key in self._inserting

    def _block(self, pkt: Packet) -> None:
        if key_state := self._pending.get(pkt.key):
            key_state.blocked.append(pkt)
        else:
            self._inserting[pkt.key].append(pkt)
        if pkt.token is not None:
            self.dedup.note_queued(pkt.src, pkt.token)

    # -- switch cache updates -------------------------------------------------------

    def _next_version(self, key: bytes) -> int:
        v = self._versions.get(key, 0) + 1
        self._versions[key] = v
        return v

    def _start_update(self, key: bytes, value: Optional[bytes]) -> None:
        if value is None:
            raise CoherenceError("cache update requires the new value")
        pending = _PendingUpdate(key, value, self._next_version(key))
        obs = _obs.ACTIVE
        if obs is not None:
            pending.started_at = obs.tracer.clock()
        self._pending[key] = pending
        self._transmit_update(pending)

    def _transmit_update(self, pending: _PendingUpdate) -> None:
        pkt = make_cache_update(
            src=self.server.node_id,
            dst=self.server.gateway,
            key=pending.key,
            value=pending.value,
            seq=pending.version,
        )
        self.server.send_to_gateway(pkt)
        self.updates_sent += 1
        pending.timer = self.server.schedule(
            self.update_rto, self._on_update_timeout, pending
        )

    def _on_update_timeout(self, pending: _PendingUpdate) -> None:
        if self._pending.get(pending.key) is not pending:
            return  # already acked
        if pending.retries >= self.max_update_retries:
            # Terminal: raising here would escape into the simulator event
            # loop.  Degrade the key instead and let the controller evict.
            self._enter_degraded(pending)
            return
        pending.retries += 1
        self.retransmissions += 1
        self._transmit_update(pending)

    # -- degraded write-around mode -------------------------------------------------

    def _enter_degraded(self, pending: _PendingUpdate) -> None:
        """Retry budget exhausted: stop updating the switch for this key,
        drain its blocked writes as write-around, ask for eviction."""
        del self._pending[pending.key]
        self._degraded.add(pending.key)
        self.degraded_entries += 1
        obs = _obs.ACTIVE
        if obs is not None:
            obs.shim_degraded.inc()
        # Degraded keys never block on pending updates, so the queued
        # writes drain immediately (unless an insertion still holds them).
        self._drain_blocked(pending.key, pending.blocked)
        if self.degraded_handler is not None:
            self.degraded_handler(self.server.node_id, pending.key)

    def clear_degraded(self, key: bytes) -> None:
        """Controller ack: *key* was evicted from the switch; future writes
        arrive uncached and the key leaves write-around mode."""
        if key in self._degraded:
            self._degraded.discard(key)
            self.degraded_recovered += 1

    def _handle_ack(self, pkt: Packet) -> None:
        pending = self._pending.get(pkt.key)
        if pending is None or pkt.seq != pending.version:
            return  # stale ack
        if pending.timer is not None:
            pending.timer.cancel()
        del self._pending[pkt.key]
        self.updates_acked += 1
        obs = _obs.ACTIVE
        if obs is not None and pending.started_at is not None:
            obs.shim_update_rtt.observe(
                obs.tracer.clock() - pending.started_at)
        self._drain_blocked(pkt.key, pending.blocked)

    def _drain_blocked(self, key: bytes, blocked: List[Packet]) -> None:
        # Re-process queued writes in arrival order.  Each may start a new
        # update, which re-blocks the remainder.
        for i, queued in enumerate(blocked):
            if self._must_block(key):
                # Put the rest back onto whichever structure now blocks.
                for rest in blocked[i:]:
                    self._block(rest)
                return
            self._dispatch(queued)

    # -- controller-driven insertion (§4.3) -----------------------------------------

    def begin_insertion(self, key: bytes) -> Optional[bytes]:
        """Controller is inserting *key* into the switch: block writes and
        return the current value (None if the key does not exist here)."""
        self._inserting.setdefault(key, [])
        return self.store.get(key)

    def end_insertion(self, key: bytes) -> None:
        """Controller finished inserting *key*: release blocked writes."""
        blocked = self._inserting.pop(key, [])
        self._drain_blocked(key, blocked)

    def abort_insertion(self, key: bytes) -> None:
        """Controller lease expired: roll the insertion back, releasing its
        blocked writes exactly like a completed one."""
        if key in self._inserting:
            self.insertion_aborts += 1
        self.end_insertion(key)

    # -- introspection ----------------------------------------------------------------

    @property
    def pending_updates(self) -> int:
        return len(self._pending)

    @property
    def blocked_writes(self) -> int:
        return sum(len(p.blocked) for p in self._pending.values()) + sum(
            len(q) for q in self._inserting.values()
        )

    @property
    def degraded_keys(self) -> frozenset:
        return frozenset(self._degraded)


class StorageServerLike:
    """Protocol the shim expects from its owning server (documented duck
    type; :class:`repro.kvstore.server.StorageServer` implements it)."""

    node_id: int
    gateway: int

    def send_reply(self, pkt: Packet) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def send_to_gateway(self, pkt: Packet) -> None:  # pragma: no cover
        raise NotImplementedError

    def schedule(self, delay: float, callback: Callable, *args):  # pragma: no cover
        raise NotImplementedError
