"""Chained hash table — the TommyDS-style backend.

TommyDS (the library the paper's storage servers use, §6) is a chained
hash table with per-bucket linked lists.  This is the faithful equivalent:
an array of singly-linked chains, power-of-two bucket counts, and resize on
average chain length.  It shares the interface of
:class:`repro.kvstore.hashtable.HashTable`, so :class:`~repro.kvstore.store.KVStore`
can run on either backend, and the property tests drive both against the
same dict model.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from repro.errors import ConfigurationError
from repro.sketch.hashing import hash_bytes


class _Node:
    __slots__ = ("key", "value", "next")

    def __init__(self, key: bytes, value: bytes, next_node):
        self.key = key
        self.value = value
        self.next = next_node


class ChainedHashTable:
    """Separate-chaining byte-string map."""

    MIN_BUCKETS = 8

    def __init__(self, initial_capacity: int = 64, max_chain: float = 2.0,
                 seed: int = 0xDC):
        if initial_capacity < 1:
            raise ConfigurationError("initial_capacity must be >= 1")
        if max_chain <= 0:
            raise ConfigurationError("max_chain must be positive")
        buckets = self.MIN_BUCKETS
        while buckets < initial_capacity:
            buckets *= 2
        self._buckets = [None] * buckets
        self._max_chain = max_chain
        self._seed = seed
        self._size = 0
        self.total_probes = 0
        self.total_lookups = 0

    # -- internals -----------------------------------------------------------

    def _bucket_of(self, key: bytes) -> int:
        return hash_bytes(key, self._seed) & (len(self._buckets) - 1)

    def _find(self, key: bytes) -> Tuple[int, Optional[_Node], Optional[_Node]]:
        """(bucket index, node or None, predecessor or None)."""
        idx = self._bucket_of(key)
        prev = None
        node = self._buckets[idx]
        probes = 0
        while node is not None:
            probes += 1
            if node.key == key:
                break
            prev, node = node, node.next
        self.total_probes += max(1, probes)
        self.total_lookups += 1
        return idx, node, prev

    def _maybe_grow(self) -> None:
        if self._size + 1 > self._max_chain * len(self._buckets):
            old = list(self.items())
            self._buckets = [None] * (len(self._buckets) * 2)
            self._size = 0
            for key, value in old:
                self.put(key, value)

    # -- public API ------------------------------------------------------------

    def put(self, key: bytes, value: bytes) -> bool:
        """Insert or overwrite; returns True if the key was new."""
        idx, node, _ = self._find(key)
        if node is not None:
            node.value = value
            return False
        self._maybe_grow()
        idx = self._bucket_of(key)  # buckets may have moved
        self._buckets[idx] = _Node(key, value, self._buckets[idx])
        self._size += 1
        return True

    def get(self, key: bytes) -> Optional[bytes]:
        _, node, _ = self._find(key)
        return node.value if node is not None else None

    def delete(self, key: bytes) -> bool:
        idx, node, prev = self._find(key)
        if node is None:
            return False
        if prev is None:
            self._buckets[idx] = node.next
        else:
            prev.next = node.next
        self._size -= 1
        return True

    def contains(self, key: bytes) -> bool:
        _, node, _ = self._find(key)
        return node is not None

    def items(self) -> Iterator[Tuple[bytes, bytes]]:
        for head in self._buckets:
            node = head
            while node is not None:
                yield node.key, node.value
                node = node.next

    def keys(self) -> Iterator[bytes]:
        for key, _ in self.items():
            yield key

    def clear(self) -> None:
        self._buckets = [None] * self.MIN_BUCKETS
        self._size = 0

    @property
    def capacity(self) -> int:
        return len(self._buckets)

    @property
    def load_factor(self) -> float:
        return self._size / len(self._buckets)

    def mean_probe_length(self) -> float:
        if not self.total_lookups:
            return 0.0
        return self.total_probes / self.total_lookups

    def max_chain_length(self) -> int:
        worst = 0
        for head in self._buckets:
            n, node = 0, head
            while node is not None:
                n, node = n + 1, node.next
            worst = max(worst, n)
        return worst

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: bytes) -> bool:
        return self.contains(key)
