"""The in-memory key-value store a storage server runs.

Wraps the from-scratch :class:`~repro.kvstore.hashtable.HashTable` with the
Get/Put/Delete interface, value-size enforcement, per-core sharding (the
paper's servers use Receive Side Scaling / Flow Director to shard keys over
16 cores, §1/§6), and simple operation statistics.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.constants import MAX_VALUE_SIZE
from repro.errors import ConfigurationError, ValueFormatError
from repro.kvstore.chained import ChainedHashTable
from repro.kvstore.hashtable import HashTable
from repro.sketch.hashing import hash_bytes

_CORE_SEED = 0xC04E

#: Selectable hash-table backends: open addressing (default) or the
#: TommyDS-style chained table the paper's servers use (§6).
BACKENDS = {
    "open": HashTable,
    "chained": ChainedHashTable,
}


class KVStore:
    """A sharded in-memory store.

    Parameters
    ----------
    num_cores:
        Number of per-core shards.  Keys are hashed over cores the way RSS
        spreads flows; per-core counters expose intra-server imbalance, which
        the paper notes amplifies the skew problem (§1).
    max_value_size:
        Upper bound on value length (storage servers can hold values larger
        than the switch cache; default allows 8x the switch maximum).
    backend:
        ``"open"`` (open addressing) or ``"chained"`` (TommyDS-style).
    """

    def __init__(self, num_cores: int = 16,
                 max_value_size: int = 8 * MAX_VALUE_SIZE,
                 backend: str = "open"):
        if num_cores <= 0:
            raise ConfigurationError("num_cores must be positive")
        table_cls = BACKENDS.get(backend)
        if table_cls is None:
            raise ConfigurationError(
                f"unknown backend {backend!r}; choose from {sorted(BACKENDS)}"
            )
        self.num_cores = num_cores
        self.max_value_size = max_value_size
        self.backend = backend
        self._shards = [
            table_cls(seed=_CORE_SEED + i) for i in range(num_cores)
        ]
        self.core_ops: List[int] = [0] * num_cores
        self.gets = 0
        self.puts = 0
        self.deletes = 0

    def _core_of(self, key: bytes) -> int:
        return hash_bytes(key, _CORE_SEED) % self.num_cores

    def _shard(self, key: bytes) -> HashTable:
        core = self._core_of(key)
        self.core_ops[core] += 1
        return self._shards[core]

    # -- API -------------------------------------------------------------------

    def get(self, key: bytes) -> Optional[bytes]:
        """Return the value for *key*, or None if absent."""
        self.gets += 1
        return self._shard(key).get(key)

    def put(self, key: bytes, value: bytes) -> None:
        """Insert or overwrite *key*."""
        if len(value) > self.max_value_size:
            raise ValueFormatError(
                f"value of {len(value)} bytes exceeds store limit "
                f"{self.max_value_size}"
            )
        self.puts += 1
        self._shard(key).put(key, value)

    def delete(self, key: bytes) -> bool:
        """Remove *key*; returns True if it existed."""
        self.deletes += 1
        return self._shard(key).delete(key)

    def contains(self, key: bytes) -> bool:
        return self._shards[self._core_of(key)].contains(key)

    def __len__(self) -> int:
        return sum(len(s) for s in self._shards)

    def __contains__(self, key: bytes) -> bool:
        return self.contains(key)

    # -- diagnostics -------------------------------------------------------------

    def core_imbalance(self) -> float:
        """max/mean ratio of per-core operation counts (1.0 = perfectly even)."""
        total = sum(self.core_ops)
        if total == 0:
            return 1.0
        mean = total / self.num_cores
        return max(self.core_ops) / mean

    def stats(self) -> Dict[str, float]:
        return {
            "items": float(len(self)),
            "gets": float(self.gets),
            "puts": float(self.puts),
            "deletes": float(self.deletes),
            "core_imbalance": self.core_imbalance(),
        }
