"""Hash partitioning of the key space across storage servers.

The paper assumes key-value items are hash-partitioned to the storage
servers (§3); clients compute the partition themselves and address the owning
server directly (§4.1), so the partitioner is shared by clients, servers, and
the simulators.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError, PartitionError
from repro.sketch.hashing import hash_bytes

PARTITION_SEED = 0x5EED


class HashPartitioner:
    """Maps keys to one of N partitions and partitions to server node ids."""

    def __init__(self, server_ids: Sequence[int], seed: int = PARTITION_SEED):
        if not server_ids:
            raise ConfigurationError("need at least one server")
        if len(set(server_ids)) != len(server_ids):
            raise ConfigurationError("server ids must be unique")
        self.server_ids: List[int] = list(server_ids)
        self.seed = seed
        self._index_of: Dict[int, int] = {
            sid: i for i, sid in enumerate(self.server_ids)
        }

    @property
    def num_partitions(self) -> int:
        return len(self.server_ids)

    def partition_of(self, key: bytes) -> int:
        """Partition index in [0, N) that owns *key*."""
        return hash_bytes(key, self.seed) % self.num_partitions

    def server_for(self, key: bytes) -> int:
        """Node id of the server that owns *key*."""
        return self.server_ids[self.partition_of(key)]

    def owns(self, server_id: int, key: bytes) -> bool:
        """True if *server_id* is the owner of *key*."""
        idx = self._index_of.get(server_id)
        if idx is None:
            raise PartitionError(f"{server_id} is not a storage server")
        return self.partition_of(key) == idx

    def partition_index(self, server_id: int) -> int:
        """Partition index served by *server_id*."""
        idx = self._index_of.get(server_id)
        if idx is None:
            raise PartitionError(f"{server_id} is not a storage server")
        return idx

    def split_keys(self, keys: Sequence[bytes]) -> Dict[int, List[bytes]]:
        """Group *keys* by owning partition index (load-analysis helper)."""
        out: Dict[int, List[bytes]] = {i: [] for i in range(self.num_partitions)}
        for key in keys:
            out[self.partition_of(key)].append(key)
        return out
