"""Storage substrate: hash table, sharded store, partitioning, server node,
and the coherence shim."""

from repro.kvstore.chained import ChainedHashTable
from repro.kvstore.hashtable import HashTable
from repro.kvstore.partition import HashPartitioner
from repro.kvstore.server import StorageServer
from repro.kvstore.shim import ServerShim
from repro.kvstore.snapshot import clone_store, load_store, save_store
from repro.kvstore.store import KVStore

__all__ = [
    "ChainedHashTable",
    "HashPartitioner",
    "HashTable",
    "KVStore",
    "ServerShim",
    "StorageServer",
    "clone_store",
    "load_store",
    "save_store",
]
