"""Ablation A2: value-memory layouts (§4.4.2, Fig 6).

Compares the SRAM cost of indexing N cached items with mixed value sizes
under the three designs the paper discusses:

* replicated tables — one full match table per register array;
* index-list — one table whose action data carries a separate index per
  array;
* NetCache's bitmap+index — one table, one index, one bitmap (Fig 6b),

plus the packing efficiency of the Algorithm 2 allocator (slots wasted to
fragmentation before and after reorganization).
"""

import random

from repro.constants import KEY_SIZE
from repro.core.memory import SwitchMemoryManager
from repro.sim.experiments import format_table

ITEMS = 8_192
ARRAYS = 8
INDEX_BYTES = 2
BITMAP_BYTES = 1


def table_costs(num_items):
    replicated = ARRAYS * num_items * (KEY_SIZE + INDEX_BYTES)
    index_list = num_items * (KEY_SIZE + ARRAYS * INDEX_BYTES)
    bitmap = num_items * (KEY_SIZE + INDEX_BYTES + BITMAP_BYTES)
    return replicated, index_list, bitmap


def packing_experiment(seed=1):
    rng = random.Random(seed)
    mm = SwitchMemoryManager(num_arrays=ARRAYS, slots_per_array=ITEMS)
    sizes = [rng.choice((16, 32, 48, 64, 96, 128)) for _ in range(ITEMS)]
    inserted = []
    for i, size in enumerate(sizes):
        if mm.insert(f"k{i}".encode(), size) is not None:
            inserted.append((f"k{i}".encode(), size))
    # Churn: evict a third at random, insert large values.
    for key, _ in rng.sample(inserted, len(inserted) // 3):
        mm.evict(key)
    failures_before = 0
    for i in range(500):
        if mm.insert(f"big{i}".encode(), 128) is None:
            failures_before += 1
    frag_before = mm.fragmentation()
    mm.defragment()
    failures_after = 0
    for i in range(500):
        if mm.insert(f"BIG{i}".encode(), 128) is None:
            failures_after += 1
    return frag_before, failures_before, failures_after, mm.utilization()


def run():
    rep, idx, bmp = table_costs(ITEMS)
    frag, fail_before, fail_after, util = packing_experiment()
    return rep, idx, bmp, frag, fail_before, fail_after, util


def test_ablation_alloc(benchmark, report):
    rep, idx, bmp, frag, fail_before, fail_after, util = \
        benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation A2 - lookup layouts and Algorithm 2 packing",
           format_table(
               ["metric", "value"],
               [
                   ["replicated-tables SRAM (KB)", rep / 1024],
                   ["index-list SRAM (KB)", idx / 1024],
                   ["bitmap+index SRAM (KB)", bmp / 1024],
                   ["fragmentation before defrag", frag],
                   ["128B insert failures before defrag", fail_before],
                   ["128B insert failures after defrag", fail_after],
                   ["final memory utilization", util],
               ],
           ))
    # Fig 6(b)'s design is the cheapest by a wide margin.
    assert bmp < idx < rep
    assert bmp < 0.2 * rep
    # Reorganization recovers capacity lost to fragmentation.
    assert fail_after <= fail_before
