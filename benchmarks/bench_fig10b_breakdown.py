"""Fig 10(b): per-server throughput breakdown.

Paper: without the cache, per-server load is wildly skewed (one server at
capacity, most idle); with the cache enabled the remaining load is nearly
flat across all 128 servers.  We print the load of representative servers
(sorted) and the max/mean imbalance.
"""

import numpy as np

from repro.sim.experiments import fig10b_breakdown, format_table


def run():
    return fig10b_breakdown()


def test_fig10b(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    table_rows = []
    for r in rows:
        loads = r.per_server_normalized
        picks = [loads[i] for i in (0, 1, 7, 31, 63, 127)]
        table_rows.append(
            [r.workload, "NetCache" if r.cached else "NoCache",
             r.imbalance] + [float(p) for p in picks])
    report("Fig 10(b) - per-server load (normalized, sorted desc)",
           format_table(
               ["workload", "system", "max/mean", "s0", "s1", "s7",
                "s31", "s63", "s127"],
               table_rows,
           ))
    by_key = {(r.workload, r.cached): r for r in rows}
    for skew in ("zipf-0.9", "zipf-0.95", "zipf-0.99"):
        assert by_key[(skew, False)].imbalance > \
            3 * by_key[(skew, True)].imbalance
        # With the cache, the median server runs near the peak.
        cached_loads = by_key[(skew, True)].per_server_normalized
        assert np.median(cached_loads) > 0.8
