"""Shared helpers for the benchmark harness.

Every ``bench_*`` file regenerates one table/figure from the paper's
evaluation (§7) and prints the series the paper reports.  pytest-benchmark
times the regeneration; the printed tables are the reproduction artifact
(recorded in EXPERIMENTS.md).
"""

import pytest


def emit(title, text):
    """Print one experiment's table under a banner (shown with -s, and in
    captured output otherwise)."""
    banner = "=" * len(title)
    print(f"\n{banner}\n{title}\n{banner}\n{text}\n")


@pytest.fixture()
def report():
    return emit
