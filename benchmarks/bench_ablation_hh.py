"""Ablation A1: heavy-hitter detector designs (§4.4.3).

Compares three ways to find the keys worth caching, on the same Zipf 0.99
stream:

* the NetCache data-plane design (sampler -> Count-Min sketch -> Bloom
  dedup), measured for recall of the true top-K and for report volume;
* SpaceSaving, the classic software summary a server-side monitor would run;
* exact counting (dict), the infeasible-on-switch upper bound.

The point: the sketch pipeline finds nearly all true heavy hitters with a
few KB of register memory and reports each at most once per interval.
"""

from collections import Counter

from repro.core.stats import QueryStatistics
from repro.client.zipf import ZipfGenerator
from repro.sim.experiments import format_table
from repro.sketch.spacesaving import SpaceSaving

NUM_KEYS = 50_000
QUERIES = 200_000
TOP_K = 100


def stream():
    gen = ZipfGenerator(NUM_KEYS, 0.99, seed=13)
    for _ in range(QUERIES):
        yield str(gen.next_rank()).encode()


def run():
    truth = Counter()
    # Threshold tuned to the sampled count of the rank-100 key: p_100 ~
    # 9e-4, 200K queries at 1/4 sampling -> ~46 expected observations.
    stats = QueryStatistics(entries=1024, hot_threshold=24, sample_rate=0.25,
                            seed=13)
    space = SpaceSaving(capacity=4 * TOP_K)
    netcache_reports = []
    for key in stream():
        truth[key] += 1
        hot = stats.heavy_hitter_count(key)
        if hot is not None:
            netcache_reports.append(hot)
        space.update(key)

    true_top = {k for k, _ in truth.most_common(TOP_K)}
    nc_set = set(netcache_reports)
    ss_set = {k for k, _ in space.top(len(nc_set))}
    exact_set = {k for k, _ in truth.most_common(len(nc_set))}

    def recall(found):
        return len(found & true_top) / TOP_K

    rows = [
        ["netcache-cm+bloom", recall(nc_set), len(netcache_reports),
         stats.sram_bytes],
        ["spacesaving", recall(ss_set), len(ss_set), 4 * TOP_K * 40],
        ["exact-count", recall(exact_set), len(exact_set),
         NUM_KEYS * 40],
    ]
    return rows, len(netcache_reports), len(nc_set)


def test_ablation_hh(benchmark, report):
    rows, reports, unique = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation A1 - heavy-hitter detector designs", format_table(
        ["detector", "recall@100", "reports", "approx_bytes"], rows))
    by_name = {r[0]: r for r in rows}
    # The data-plane pipeline finds the hot keys...
    assert by_name["netcache-cm+bloom"][1] > 0.9
    # ...and the Bloom filter keeps reports unique.
    assert reports == unique
    # State is far smaller than exact counting.
    assert by_name["netcache-cm+bloom"][3] < by_name["exact-count"][3]
