"""Ablation A4: sampling rate vs detection quality (§4.4.3).

The sampler in front of the statistics module lets 16-bit counters survive
line rate, at the cost of statistical resolution.  This ablation sweeps the
sample rate on a fixed Zipf 0.99 stream and reports, for each rate:

* recall of the true top-K keys among reported heavy hitters;
* total reports (with proportionally lower thresholds, heavy sampling lets
  more marginal keys through — extra controller work);
* the counter head-room consumed (max Count-Min cell) — the reason the
  sampler exists: it keeps 16-bit counters from saturating at line rate.
"""

from collections import Counter

from repro.core.stats import QueryStatistics
from repro.client.zipf import ZipfGenerator
from repro.sim.experiments import format_table

NUM_KEYS = 50_000
QUERIES = 120_000
TOP_K = 50


def run():
    rows = []
    for rate in (1.0, 0.5, 0.25, 1 / 16, 1 / 64):
        gen = ZipfGenerator(NUM_KEYS, 0.99, seed=31)
        truth = Counter()
        # Threshold scaled to the sampled count of the rank-K boundary key.
        threshold = max(2, int(QUERIES * rate * 0.0016 * 0.5))
        stats = QueryStatistics(entries=1024, hot_threshold=threshold,
                                sample_rate=rate, seed=31)
        reported = set()
        first_report = None
        for i in range(QUERIES):
            key = str(gen.next_rank()).encode()
            truth[key] += 1
            hot = stats.heavy_hitter_count(key)
            if hot is not None:
                reported.add(hot)
                if first_report is None:
                    first_report = i
        true_top = {k for k, _ in truth.most_common(TOP_K)}
        recall = len(reported & true_top) / TOP_K
        max_cell = max(stats.sketch.estimate(k) for k in true_top)
        rows.append([rate, threshold, recall, len(reported),
                     first_report if first_report is not None else -1,
                     max_cell])
    return rows


def test_ablation_sampling(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation A4 - sampling rate vs heavy-hitter detection",
           format_table(
               ["sample_rate", "threshold", "recall@50", "reports",
                "first_report_after", "max_cm_cell"], rows))
    by_rate = {r[0]: r for r in rows}
    # Full counting and paper-style 1/16 sampling both find the hot set...
    assert by_rate[1.0][2] >= 0.95
    assert by_rate[1 / 16][2] >= 0.9
    # ...but heavy sampling needs proportionally lower thresholds, which
    # admit more marginal/noise keys into the reports (controller load)...
    assert by_rate[1 / 64][3] > by_rate[1.0][3]
    # ...while keeping the counters far from their 16-bit ceiling (the
    # reason the sampler exists, §4.4.3).
    assert by_rate[1 / 64][5] < by_rate[1.0][5]
    assert by_rate[1.0][5] < (1 << 16) - 1  # and even full rate fits here
