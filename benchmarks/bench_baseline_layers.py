"""Figure 1 / §2 quantified: where should the cache live?

Compares, for an in-memory storage rack under Zipf 0.99:

* NoCache;
* selective replication of the hot items (3 replicas);
* a server-based caching layer (SwitchKV-style) with 1 and 8 cache nodes;
* the in-network switch cache.

The paper's argument is that a caching layer must be orders of magnitude
faster than the storage layer (T' >> T); an in-memory cache *node* in front
of an in-memory store saturates first, while the switch absorbs the head of
the distribution at line rate.
"""

from repro.baselines.consistent import ConsistentHashRing, ring_load_vector
from repro.baselines.replication import ReplicationConfig, simulate_replication
from repro.baselines.servercache import ServerCacheConfig, simulate_server_cache
from repro.client.zipf import KeySpace, ZipfDistribution
from repro.sim.experiments import format_table
from repro.sim.ratesim import RateSimConfig, simulate, top_k_mask

NUM_KEYS = 1_000_000
CACHE_ITEMS = 10_000


def _consistent_hashing_throughput(probs, storage) -> float:
    """§8's first alternative: a ring with virtual nodes.  Balances key
    placement, not query skew — computed on a subsampled key space (the
    pure-Python ring lookup is the slow part)."""
    sub_keys = 50_000
    sub = ZipfDistribution(sub_keys, 0.99).probs
    ring = ConsistentHashRing(list(range(storage.num_servers)),
                              virtual_nodes=128)
    loads = ring_load_vector(sub, KeySpace(sub_keys), ring)
    return storage.server_rate / loads.max()


def run():
    probs = ZipfDistribution(NUM_KEYS, 0.99).probs
    storage = RateSimConfig(num_servers=128)
    mask = top_k_mask(probs, CACHE_ITEMS)
    rows = []
    rows.append(["NoCache", simulate(probs, None, storage).throughput / 1e9])
    rows.append(["consistent-hash(128vn)",
                 _consistent_hashing_throughput(probs, storage) / 1e9])
    rows.append(["selective-replication(x3)",
                 simulate_replication(probs, storage,
                                      ReplicationConfig(CACHE_ITEMS, 3))
                 / 1e9])
    for nodes in (1, 8):
        result = simulate_server_cache(
            probs, storage,
            ServerCacheConfig(num_cache_nodes=nodes, cache_node_rate=10e6,
                              cache_items=CACHE_ITEMS))
        rows.append([f"server-cache(x{nodes})", result.throughput / 1e9])
    rows.append(["netcache-switch",
                 simulate(probs, mask, storage).throughput / 1e9])
    return rows


def test_baseline_layers(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§2 - caching-layer placement comparison (Zipf 0.99)",
           format_table(["design", "BQPS"], rows))
    tput = dict(rows)
    assert tput["netcache-switch"] > 2 * tput["server-cache(x8)"]
    assert tput["server-cache(x1)"] < 2 * tput["NoCache"]
    assert tput["selective-replication(x3)"] < tput["netcache-switch"]
    assert tput["NoCache"] < tput["selective-replication(x3)"]
    # Consistent hashing rearranges keys but cannot split a hot key's
    # load: same order of magnitude as plain hash partitioning (§8).
    assert tput["consistent-hash(128vn)"] < 3 * tput["NoCache"]
