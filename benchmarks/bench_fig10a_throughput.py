"""Fig 10(a): system throughput, NoCache vs NetCache, by skew.

Paper (128 servers, 10K cached items, read-only): NoCache collapses to
15-25% of its uniform throughput under Zipf 0.9-0.99; NetCache improves
throughput 3.6x / 6.5x / 10x at Zipf 0.9 / 0.95 / 0.99 and lands around
2 BQPS, split between the switch cache and the (now balanced) servers.
"""

from repro.sim.experiments import fig10a_throughput, format_table


def run():
    return fig10a_throughput()


def test_fig10a(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 10(a) - throughput under skew (128 servers)", format_table(
        ["workload", "NoCache_BQPS", "NetCache_BQPS", "cache_BQPS",
         "servers_BQPS", "improvement"],
        [[r.workload, r.nocache_bqps, r.netcache_bqps, r.cache_portion_bqps,
          r.server_portion_bqps, r.improvement] for r in rows],
    ))
    by_name = {r.workload: r for r in rows}
    # Shape checks: skew kills NoCache, NetCache restores throughput, and
    # the improvement factor grows with skew.
    assert by_name["zipf-0.99"].nocache_bqps < \
        0.25 * by_name["uniform"].nocache_bqps
    imps = [by_name[k].improvement
            for k in ("zipf-0.9", "zipf-0.95", "zipf-0.99")]
    assert imps == sorted(imps) and imps[0] > 3.0
    assert 1.0 < by_name["zipf-0.99"].netcache_bqps < 3.0  # ~2 BQPS
