"""Extension bench: switch reboot and cache refill (§3).

"If the switch fails, operators can simply reboot the switch with an empty
cache ... Because NetCache caches are small, they will refill rapidly."

Runs the hybrid emulation with a mid-run reboot: throughput collapses to
roughly the NoCache level the instant the cache empties, then climbs back
as the heavy-hitter detector re-reports the head of the distribution and
the controller reinstalls it.
"""

import numpy as np

from repro.sim.emulation import DynamicsEmulator, EmulationConfig
from repro.sim.experiments import format_table


def run():
    # Sampling/threshold sized so even the coldest cached key (rank ~1000)
    # crosses the threshold within one statistics interval after a reboot.
    config = EmulationConfig(
        num_keys=20_000, cache_items=1_000, num_servers=64,
        server_rate=100_000.0, churn_kind="hot-out", churn_n=1,
        churn_interval=1_000.0,          # effectively static workload
        duration=24.0, samples_per_step=8_000, hot_threshold=4,
        reboot_times=(10.0,), seed=4,
    )
    emulator = DynamicsEmulator(config)
    result = emulator.run()
    return result


def test_recovery(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    per_second = result.rebinned(1.0)
    cache_per_second = result.cache_size[::10]
    report("§3 - switch reboot: throughput and cache refill", format_table(
        ["second", "tput_MQPS", "cache_items"],
        [[i, per_second[i] / 1e6, cache_per_second[i]]
         for i in range(len(per_second))],
    ))
    rates = np.asarray(result.throughput)
    reboot_idx = int(result.reboot_times[0] / 0.1)
    before = rates[reboot_idx - 20 : reboot_idx].mean()
    crash = rates[reboot_idx : reboot_idx + 3].min()
    recovered = rates[reboot_idx + 10 : reboot_idx + 30].max()
    # The reboot hurts (cache gone; servers take the skew)...
    assert result.cache_size[reboot_idx] < 1_000
    assert crash < 0.85 * before
    # ...the cache refills rapidly from heavy-hitter reports (§3)...
    assert result.cache_size[reboot_idx + 15] == 1_000
    # ...and throughput recovers within a couple of seconds.
    assert recovered > 0.9 * before
