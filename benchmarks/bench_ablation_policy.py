"""Ablation A3: cache-update policies under an update-rate budget (§4.3).

The paper rejects LRU/LFU because "commodity switches are able to update
more than 10K table entries per second" while the data plane sees a billion
queries: per-query policies want orders of magnitude more updates than the
driver can apply.  This benchmark runs LRU, LFU, and NetCache's
threshold-insertion policy on identical Zipf streams under (i) an unlimited
budget and (ii) a realistic budget, reporting hit ratio and updates used.
"""

from repro.baselines.policies import LfuPolicy, LruPolicy, ThresholdPolicy
from repro.client.zipf import ZipfGenerator
from repro.core.geometry import run_policy
from repro.sim.experiments import format_table

NUM_KEYS = 20_000
QUERIES = 100_000
CAPACITY = 1_000
INTERVAL = 2_000


def stream():
    gen = ZipfGenerator(NUM_KEYS, 0.99, seed=21)
    return (str(gen.next_rank()).encode() for _ in range(QUERIES))


def run():
    rows = []
    for budget_name, budget in (("unlimited", 10**9), ("realistic", 40)):
        for policy in (LruPolicy(CAPACITY), LfuPolicy(CAPACITY),
                       ThresholdPolicy(CAPACITY, threshold=3)):
            hit_ratio, updates = run_policy(policy, stream(), INTERVAL,
                                            budget)
            rows.append([budget_name, policy.name, hit_ratio, updates])
    return rows


def test_ablation_policy(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation A3 - update policies vs table-update budget",
           format_table(
               ["budget", "policy", "hit_ratio", "updates_applied"], rows))
    data = {(r[0], r[1]): (r[2], r[3]) for r in rows}
    lru_free = data[("unlimited", "lru")]
    thr_free = data[("unlimited", "netcache-threshold")]
    # Threshold insertion ~matches LRU's hit ratio at a tiny update cost.
    assert thr_free[0] > 0.8 * lru_free[0]
    assert thr_free[1] < 0.05 * lru_free[1]
    # Under the realistic budget the threshold policy wins outright.
    assert data[("realistic", "netcache-threshold")][0] >= \
        data[("realistic", "lru")][0]
