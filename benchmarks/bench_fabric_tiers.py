"""Extension bench: packet-level leaf-spine cache tiers (§5 mechanism).

Fig 10(f) simulates multi-rack caching analytically; this bench runs the
*mechanism* — a spine NetCache switch above NetCache ToRs — at packet level
and reports where queries are served: the spine absorbs the global head,
the leaves absorb each rack's warm middle, and only the tail reaches
servers.
"""

from repro.sim.cluster import default_workload
from repro.sim.experiments import format_table
from repro.sim.fabric import Fabric, FabricConfig


def run():
    workload = default_workload(num_keys=5_000, skew=0.99, seed=5)
    fabric = Fabric(FabricConfig(
        num_racks=4, servers_per_rack=4, leaf_cache_items=64,
        spine_cache_items=64, server_rate=50_000.0, seed=5,
    ))
    fabric.load_workload_data(workload)
    fabric.warm_caches(workload)

    client = fabric.clients[0]
    queries = 4_000
    for _ in range(queries):
        _, key = workload.next_query()
        client.get(key)
    fabric.run(0.5)

    hits = fabric.tier_hits()
    served = client.received
    rows = [
        ["spine cache", hits["spine"], hits["spine"] / served],
        ["leaf caches", hits["leaf"], hits["leaf"] / served],
        ["servers", served - hits["spine"] - hits["leaf"],
         (served - hits["spine"] - hits["leaf"]) / served],
    ]
    return rows, served, queries


def test_fabric_tiers(benchmark, report):
    rows, served, queries = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Extension - leaf-spine tier breakdown (Zipf 0.99)", format_table(
        ["tier", "queries", "fraction"], rows))
    assert served > 0.99 * queries          # nothing lost
    fractions = {r[0]: r[2] for r in rows}
    # The spine (global top-64) outserves the leaves (next 256 spread over
    # racks), and both together absorb the majority of a Zipf 0.99 stream.
    assert fractions["spine cache"] > fractions["leaf caches"] > 0
    assert fractions["spine cache"] + fractions["leaf caches"] > 0.5
