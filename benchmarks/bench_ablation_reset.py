"""Ablation A5: statistics clearing cycle vs reaction speed (§4.4.3).

"All statistics data are cleared periodically by the controller.  The
clearing cycle has direct impact on how quickly the cache can react to
workload changes."  This ablation runs the same hot-in churn with three
clearing cycles and measures the depth and duration of the throughput dip
after each change: a long cycle keeps stale heavy-hitter state (Bloom bits
already set suppress fresh reports; old counts distort comparisons) and
slows recovery.
"""

import numpy as np

from repro.sim.emulation import DynamicsEmulator, EmulationConfig
from repro.sim.experiments import format_table


def one_run(stats_interval):
    config = EmulationConfig(
        num_keys=20_000, cache_items=1_000, num_servers=32,
        server_rate=50_000.0, churn_kind="hot-in", churn_n=150,
        churn_interval=8.0, duration=24.0, samples_per_step=3_000,
        hot_threshold=5, stats_interval=stats_interval, seed=9,
    )
    result = DynamicsEmulator(config).run()
    rates = np.asarray(result.throughput)
    dips, recovery_steps = [], []
    for t in result.churn_times:
        idx = int(t / 0.1)
        if idx + 40 > len(rates):
            continue
        before = rates[max(0, idx - 20) : idx].mean()
        window = rates[idx : idx + 40]
        dips.append(window.min() / before)
        above = np.flatnonzero(window > 0.9 * before)
        recovery_steps.append(int(above[0]) if above.size else 40)
    return (float(np.mean(dips)), float(np.mean(recovery_steps)) * 0.1,
            result.insertions[-1])


def run():
    rows = []
    for interval in (0.5, 1.0, 4.0):
        dip, recovery_s, insertions = one_run(interval)
        rows.append([interval, dip, recovery_s, insertions])
    return rows


def test_ablation_reset(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Ablation A5 - statistics clearing cycle vs reaction speed",
           format_table(
               ["reset_interval_s", "mean_dip_fraction",
                "mean_recovery_s", "insertions"], rows))
    # Recovery time grows with the clearing cycle (the §4.4.3 claim).
    recoveries = [r[2] for r in rows]
    assert recoveries == sorted(recoveries)
    assert recoveries[-1] > 2 * recoveries[0]
    # Hot-in always dips hard (the cache misses the new head entirely) and
    # every configuration performs insertions to recover.
    assert all(0.0 < r[1] < 0.5 for r in rows)
    assert all(r[3] > 0 for r in rows)
