"""Fig 10(e): impact of cache size on system throughput.

Paper: with only ~1 000 cached items the 128 servers are balanced (matching
the uniform-workload throughput); beyond that the cache adds throughput with
diminishing returns (log-scale x-axis); larger caches help Zipf 0.99 more
than Zipf 0.9.
"""

from repro.sim.experiments import fig10e_cache_size, format_table


def run():
    return fig10e_cache_size(
        cache_sizes=(10, 100, 1_000, 10_000, 65_536))


def test_fig10e(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 10(e) - throughput vs cache size", format_table(
        ["zipf", "cache_items", "total_BQPS", "cache_BQPS"],
        [[r.skew, r.cache_items, r.throughput_bqps, r.cache_portion_bqps]
         for r in rows],
    ))
    for skew in (0.9, 0.99):
        series = [r for r in rows if r.skew == skew]
        tputs = [r.throughput_bqps for r in series]
        # Growth with diminishing returns, never a collapse.
        assert tputs[2] > 1.5 * tputs[0]          # 1 000 >> 10
        assert tputs[-1] <= tputs[2] * 1.3        # little past 1 000
        portions = [r.cache_portion_bqps for r in series]
        assert portions == sorted(portions)       # cache share monotone
    # At ~1 000 items the rack is balanced: within 10% of peak.
    for skew in (0.9, 0.99):
        series = {r.cache_items: r for r in rows if r.skew == skew}
        peak = max(r.throughput_bqps for r in rows if r.skew == skew)
        assert series[1_000].throughput_bqps > 0.85 * peak
