"""Fig 10(d): impact of write ratio.

Paper: with *uniform* writes NetCache's benefit erodes gradually and the two
systems meet at write ratio 1.0; with writes as skewed as the reads
(Zipf 0.99) the caching benefit disappears by write ratio ~0.2 and NetCache
pays the coherence overhead, landing at or slightly below NoCache.
"""

from repro.sim.experiments import fig10d_write_ratio, format_table


def run():
    return fig10d_write_ratio()


def test_fig10d(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 10(d) - throughput vs write ratio (Zipf 0.99 reads)",
           format_table(
               ["write_dist", "write_ratio", "NoCache_BQPS",
                "NetCache_BQPS"],
               [[r.write_dist, r.write_ratio, r.nocache_bqps,
                 r.netcache_bqps] for r in rows],
           ))
    uniform = {r.write_ratio: r for r in rows if r.write_dist == "uniform"}
    skewed = {r.write_ratio: r for r in rows if r.write_dist == "zipf-0.99"}
    # Uniform writes: systems converge at w=1.0.
    assert abs(uniform[1.0].netcache_bqps - uniform[1.0].nocache_bqps) < \
        0.1 * uniform[1.0].nocache_bqps
    # Skewed writes: big win at w=0, gone by w=0.2.
    assert skewed[0.0].netcache_bqps > 5 * skewed[0.0].nocache_bqps
    assert skewed[0.2].netcache_bqps < 1.1 * skewed[0.2].nocache_bqps
    # Past the crossover, coherence overhead puts NetCache below NoCache.
    assert skewed[0.8].netcache_bqps < skewed[0.8].nocache_bqps
