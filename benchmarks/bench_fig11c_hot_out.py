"""Fig 11(c): dynamic workload, hot-out churn.

Paper: every second the 200 hottest keys go cold and everything else moves
up — mostly a reordering of already-cached keys, so throughput is nearly
constant over time.
"""

import numpy as np

from repro.sim.experiments import fig11_dynamics, format_table


def run():
    return fig11_dynamics("hot-out", duration=30.0)


def test_fig11c(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    per_second = result.rebinned(1.0)
    report("Fig 11(c) - hot-out churn (200 hottest per second)",
           format_table(
               ["second", "tput_MQPS(1s)"],
               [[i, v / 1e6] for i, v in enumerate(per_second)],
           ))
    steady = np.asarray(per_second[10:])
    # "Very steady throughput over time".
    assert steady.min() > 0.6 * steady.max()
