"""Micro-benchmarks of the core data structures (simulator performance).

Not a paper figure: these time the Python substrate itself — data-plane
packet processing, sketch updates, allocator churn, hash-table ops — so
regressions in the simulator's own performance are caught.
"""

from repro.core.dataplane import NetCacheDataplane
from repro.core.memory import SwitchMemoryManager
from repro.kvstore.hashtable import HashTable
from repro.net.packet import make_get
from repro.net.routing import RoutingTable
from repro.sketch.countmin import CountMinSketch

KEY = b"0123456789abcdef"


def _dataplane():
    routing = RoutingTable(default_port=0)
    routing.add_route(1, 1)
    routing.add_route(2, 2)
    dp = NetCacheDataplane(routing, num_pipes=1, ports_per_pipe=8,
                           entries=1024, value_slots=1024)
    dp.install(KEY, b"v" * 128, 1)
    return dp


def test_dataplane_cache_hit(benchmark):
    dp = _dataplane()

    def hit():
        pkt = make_get(2, 1, KEY)
        dp.process(pkt, 2)
        return pkt

    pkt = benchmark(hit)
    assert pkt.served_by_cache


def test_dataplane_cache_miss(benchmark):
    dp = _dataplane()
    cold = b"fedcba9876543210"

    def miss():
        return dp.process(make_get(2, 1, cold), 2)

    result = benchmark(miss)
    assert result.egress_port == 1


def test_countmin_update(benchmark):
    sketch = CountMinSketch(width=64 * 1024, depth=4)
    benchmark(sketch.update, KEY)
    assert sketch.estimate(KEY) > 0


def test_allocator_insert_evict(benchmark):
    mm = SwitchMemoryManager(num_arrays=8, slots_per_array=4096)

    def cycle():
        mm.insert(KEY, 128)
        mm.evict(KEY)

    benchmark(cycle)
    assert len(mm) == 0


def test_hashtable_put_get(benchmark):
    table = HashTable(initial_capacity=1024)
    for i in range(512):
        table.put(f"warm{i}".encode(), b"v")

    def cycle():
        table.put(KEY, b"value")
        return table.get(KEY)

    assert benchmark(cycle) == b"value"
