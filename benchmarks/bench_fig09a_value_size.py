"""Fig 9(a): switch throughput vs value size (snake test).

Paper: 2.24 BQPS, flat for value sizes up to 128 B (bottlenecked by the two
traffic generators, not the switch); larger values recirculate and halve the
chip's effective rate.  Reads and updates behave identically.
"""

from repro.sim.experiments import fig09a_value_size, format_table


def run():
    return fig09a_value_size()


def test_fig09a(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 9(a) - throughput vs value size (snake test)", format_table(
        ["value_bytes", "read_BQPS", "update_BQPS", "passes", "verified"],
        [[r.x, r.read_bqps, r.update_bqps, r.pipeline_passes, r.verified]
         for r in rows],
    ))
    one_pass = [r for r in rows if r.x <= 128]
    assert all(r.read_bqps == one_pass[0].read_bqps for r in one_pass)
    assert abs(one_pass[0].read_bqps - 2.24) < 1e-9
    assert all(r.verified for r in rows)
