"""Fig 11(b): dynamic workload, random churn.

Paper: every second 200 random keys of the top-10 000 are swapped with cold
keys — a moderate change (the hottest keys rarely rotate out).  Per-second
dips are shallow and the 10-second average is essentially flat.
"""

import numpy as np

from repro.sim.experiments import fig11_dynamics, format_table


def run():
    return fig11_dynamics("random", duration=30.0)


def test_fig11b(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    per_second = result.rebinned(1.0)
    report("Fig 11(b) - random churn (200 of top-10000 per second)",
           format_table(
               ["second", "tput_MQPS(1s)"],
               [[i, v / 1e6] for i, v in enumerate(per_second)],
           ))
    # Skip the AIMD ramp; after that the per-second average holds.
    steady = np.asarray(per_second[10:])
    assert steady.min() > 0.5 * steady.max()
    # 10-second average nearly unaffected (paper: "almost unaffected").
    ten = np.asarray(result.rebinned(10.0)[1:])
    assert ten.min() > 0.75 * ten.max()
