"""Fig 9(b): switch throughput vs cache size (snake test).

Paper: 2.24 BQPS, flat up to the 64K-item lookup-table limit; cache size
does not affect the pipeline's packet rate.
"""

from repro.sim.experiments import fig09b_cache_size, format_table


def run():
    return fig09b_cache_size()


def test_fig09b(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 9(b) - throughput vs cache size (snake test)", format_table(
        ["cache_items", "read_BQPS", "update_BQPS", "verified"],
        [[r.x, r.read_bqps, r.update_bqps, r.verified] for r in rows],
    ))
    assert len({r.read_bqps for r in rows}) == 1
    assert all(r.verified for r in rows)
