"""Fig 11(a): dynamic workload, hot-in churn.

Paper: every 10 s the 200 coldest keys jump to the top of the popularity
ranks — the most radical change.  Per-second throughput dips sharply at each
change and recovers within about a second as the heavy-hitter detector
reports the new keys and the controller installs them; the 10-second
average stays high.
"""

import numpy as np

from repro.sim.experiments import dynamics_summary, fig11_dynamics, format_table


def run():
    return fig11_dynamics("hot-in", duration=40.0)


def test_fig11a(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    per_second = result.rebinned(1.0)
    per_ten = result.rebinned(10.0)
    report("Fig 11(a) - hot-in churn (200 keys every 10 s)", format_table(
        ["second", "tput_MQPS(1s)", "tput_MQPS(10s avg)"],
        [[i, per_second[i] / 1e6, per_ten[i // 10] / 1e6]
         for i in range(len(per_second))],
    ))
    summary = dynamics_summary(result)
    rates = np.asarray(result.throughput)
    # Dips at churn, recovery within ~2 s (20 steps of 100 ms).
    for t in result.churn_times[:-1]:
        idx = int(t / 0.1)
        before = rates[idx - 10 : idx].mean()
        dip = rates[idx : idx + 5].min()
        recovered = rates[idx + 20 : idx + 60].max()
        assert dip < 0.8 * before
        assert recovered > 0.7 * before
    assert summary["steady"] > 0
