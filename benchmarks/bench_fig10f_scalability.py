"""Fig 10(f): scaling to multiple racks (simulation, as in the paper).

Paper: NoCache stays flat as servers are added (the hottest server always
binds); Leaf-Cache (ToR caches only) grows but flattens by tens of racks
because inter-rack imbalance remains; Leaf-Spine-Cache grows linearly to
4 096 servers.
"""

from repro.sim.experiments import fig10f_scalability, format_table


def run():
    return fig10f_scalability()


def test_fig10f(benchmark, report):
    points = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 10(f) - scaling to 32 racks (4096 servers)", format_table(
        ["design", "racks", "servers", "BQPS"],
        [[p.design, p.num_racks, p.num_servers, p.throughput / 1e9]
         for p in points],
    ))
    series = {}
    for p in points:
        series.setdefault(p.design, {})[p.num_racks] = p.throughput
    # NoCache flat: 32x servers buys < 30% more throughput.
    assert series["NoCache"][32] < 1.3 * series["NoCache"][1]
    # Leaf-Cache grows but clearly sublinearly.
    leaf_growth = series["Leaf-Cache"][32] / series["Leaf-Cache"][1]
    assert 2 < leaf_growth < 20
    # Leaf-Spine scales linearly (>= 24x for 32x servers).
    spine_growth = series["Leaf-Spine-Cache"][32] / \
        series["Leaf-Spine-Cache"][1]
    assert spine_growth > 24
    # Ordering at scale.
    assert series["NoCache"][32] < series["Leaf-Cache"][32] < \
        series["Leaf-Spine-Cache"][32]
