"""Implementation resource table (§6).

Paper: lookup table 64K x 16-byte keys; value arrays 8 stages x 64K x 16 B
(8 MB); Count-Min sketch 4 x 64K x 16 bit; Bloom filter 3 x 256K x 1 bit;
all together under 50% of the Tofino's on-chip memory.
"""

from repro.core.resources import paper_prototype_report


def run():
    return paper_prototype_report()


def test_resources(benchmark, report):
    result = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§6 - switch SRAM footprint (paper prototype geometry)",
           result.render())
    assert result.fits_half_chip
    values = next(l for l in result.lines if l.component == "value_arrays")
    assert values.sram_bytes == 8 * 1024 * 1024
