"""Methodology bench: server rotation vs direct equilibrium (§7.1).

The paper measured its 128-server numbers by rotating two physical servers
through all partitions and summing.  This bench runs that exact procedure
on the packet-level simulator (scaled to 8 partitions) and compares the
aggregate against the direct equilibrium computation — showing the
measurement methodology and the model agree, which is what licenses using
the model for the full-scale figures.
"""

from repro.analysis.validation import predict
from repro.sim.experiments import format_table
from repro.sim.rotation import RotationConfig, ServerRotation


def run():
    rows = []
    for cache in (False, True):
        rot = ServerRotation(RotationConfig(enable_cache=cache, seed=1))
        result = rot.run()
        cached_keys = None
        if cache:
            cached_keys = rot._fresh_cluster().switch.dataplane.cached_keys()
        model = predict(rot.config.num_partitions, rot.config.server_rate,
                        rot.workload, cached_keys)
        rows.append([
            "NetCache" if cache else "NoCache",
            result.total_throughput, model.throughput,
            result.total_throughput / model.throughput,
            result.bottleneck,
        ])
    return rows


def test_rotation_methodology(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("§7.1 - server rotation vs direct equilibrium (8 partitions)",
           format_table(
               ["system", "rotation_qps", "model_qps", "ratio",
                "bottleneck"], rows))
    for row in rows:
        assert 0.85 < row[3] < 1.15  # within 15%
