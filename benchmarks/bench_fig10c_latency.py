"""Fig 10(c): average latency vs throughput (discrete-event, scaled rack).

Paper: NoCache serves at ~15 us but saturates at ~0.2 BQPS (10% of the
rack); NetCache holds 11-12 us average (7 us for cache hits) all the way to
2 BQPS.  The scaled DES rack reproduces the relative saturation points: the
NoCache curve blows up at a small fraction of rack capacity while NetCache
stays flat to full load.
"""

from repro.sim.experiments import fig10c_latency, format_table


def run():
    return fig10c_latency(
        offered_fractions=(0.1, 0.3, 0.5, 0.7, 0.9, 1.0),
        sim_seconds=0.2,
    )


def test_fig10c(benchmark, report):
    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    report("Fig 10(c) - latency vs throughput (scaled rack, 8 servers)",
           format_table(
               ["system", "offered/capacity", "tput_qps", "mean_us",
                "p99_us"],
               [[r.system, r.offered_fraction, r.throughput_qps,
                 r.mean_latency_us, r.p99_latency_us] for r in rows],
           ))
    nocache = [r for r in rows if r.system == "NoCache"]
    netcache = [r for r in rows if r.system == "NetCache"]
    # NoCache latency explodes well below rack capacity.
    assert nocache[-1].mean_latency_us > 20 * nocache[0].mean_latency_us
    # NetCache stays flat (within 3x of its unloaded latency) at full load.
    assert netcache[-1].mean_latency_us < 3 * netcache[0].mean_latency_us
    # At matched load, NetCache is faster.
    assert netcache[-1].mean_latency_us < nocache[-1].mean_latency_us
