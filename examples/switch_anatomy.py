#!/usr/bin/env python3
"""Switch anatomy: follow one query through the NetCache pipeline.

Walks a Get, a Put, and a cache update through the data-plane model step by
step, printing the state each module touches (lookup table, cache status,
value register arrays, statistics), then prints the §6 resource report.

Run:  python examples/switch_anatomy.py
"""

from repro.core.dataplane import NetCacheDataplane
from repro.core.resources import paper_prototype_report, report_for
from repro.net.packet import make_cache_update, make_get, make_put
from repro.net.routing import RoutingTable

CLIENT, SERVER = 100, 1
KEY = b"user:184467:cart"  # exactly 16 bytes


def build():
    routing = RoutingTable()
    routing.add_route(CLIENT, 10)
    routing.add_route(SERVER, 0)
    dp = NetCacheDataplane(routing, num_pipes=1, ports_per_pipe=16,
                           entries=256, value_slots=256)
    dp.stats.set_sample_rate(1.0)
    dp.stats.set_hot_threshold(3)
    return dp


def show_entry(dp, key):
    res = dp.lookup.lookup(key)
    if res is None:
        print("    lookup: MISS")
        return
    pipe = dp.pipe_of_port(res.egress_port)
    valid = dp.status[pipe].is_valid(res.key_index)
    print(f"    lookup: HIT  bitmap={res.bitmap:#010b} "
          f"index={res.value_index} key_index={res.key_index} "
          f"egress_port={res.egress_port} valid={valid}")


def main():
    dp = build()
    print("== 1. misses drive the heavy-hitter detector ==")
    for i in range(4):
        pkt = make_get(CLIENT, SERVER, KEY, seq=i)
        result = dp.process(pkt, ingress_port=10)
        est = dp.stats.sketch.estimate(KEY)
        flag = f" -> REPORT to controller" if result.hot_key else ""
        print(f"  GET #{i}: forwarded to port {result.egress_port}, "
              f"count-min estimate now {est}{flag}")

    print("\n== 2. the controller installs the item ==")
    dp.install(KEY, b"3 items, $42.17", egress_port=0)
    show_entry(dp, KEY)

    print("\n== 3. reads are served by the switch ==")
    pkt = make_get(CLIENT, SERVER, KEY, seq=10)
    result = dp.process(pkt, ingress_port=10)
    print(f"  GET: op={pkt.op.name} value={pkt.value!r} "
          f"mirrored to upstream port {result.egress_port}")
    print(f"  per-key counter: {dp.counter_of(KEY)}")

    print("\n== 4. a write invalidates and is rewritten for the server ==")
    wpkt = make_put(CLIENT, SERVER, KEY, b"4 items, $55.09", seq=11)
    dp.process(wpkt, ingress_port=10)
    print(f"  PUT rewritten to {wpkt.op.name} (server will run the "
          f"coherence path)")
    show_entry(dp, KEY)

    print("\n== 5. the server's CACHE_UPDATE revalidates the entry ==")
    upd = make_cache_update(SERVER, SERVER, KEY, b"4 items, $55.09", seq=1)
    result = dp.process(upd, ingress_port=0)
    print(f"  update applied; ack {result.generated[0].packet.op.name} "
          f"sent back out port {result.generated[0].port}")
    show_entry(dp, KEY)
    pkt = make_get(CLIENT, SERVER, KEY, seq=12)
    dp.process(pkt, ingress_port=10)
    print(f"  GET now returns {pkt.value!r}")

    print("\n== 6. what this costs on the chip (paper geometry) ==")
    print(paper_prototype_report().render())


if __name__ == "__main__":
    main()
