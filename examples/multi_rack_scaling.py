#!/usr/bin/env python3
"""Scaling beyond one rack: leaf vs leaf+spine caching (§5, Fig 10f).

Sweeps 1..32 racks (128 servers each) under Zipf 0.99 and prints the
throughput of the three designs the paper simulates, with a bar chart.

Run:  python examples/multi_rack_scaling.py
"""

from repro.sim.scaling import ScalingConfig, sweep


def main():
    config = ScalingConfig()
    points = sweep((1, 2, 4, 8, 16, 32), config)
    series = {}
    for p in points:
        series.setdefault(p.design, []).append((p.num_racks, p.throughput))

    peak = max(p.throughput for p in points)
    print("Scaling a NetCache deployment to 32 racks (4096 servers), "
          "Zipf 0.99\n")
    print(f"{'racks':>6} {'servers':>8}   "
          f"{'NoCache':>10} {'Leaf-Cache':>11} {'Leaf-Spine':>11}")
    for i, (racks, _) in enumerate(series["NoCache"]):
        row = [series[d][i][1] for d in
               ("NoCache", "Leaf-Cache", "Leaf-Spine-Cache")]
        print(f"{racks:>6} {racks * 128:>8}   "
              + " ".join(f"{v / 1e9:>10.2f}" for v in row) + "  BQPS")

    print("\nthroughput relative to the best design at 32 racks:")
    for design in ("NoCache", "Leaf-Cache", "Leaf-Spine-Cache"):
        value = series[design][-1][1]
        bar = "#" * max(1, int(50 * value / peak))
        print(f"  {design:<17} |{bar}")

    print("\nNoCache is flat (hottest server binds); Leaf-Cache balances "
          "within racks but the\nhottest rack's uplinks bind; spine caches "
          "absorb inter-rack skew and scale linearly.")


if __name__ == "__main__":
    main()
