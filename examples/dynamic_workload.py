#!/usr/bin/env python3
"""Dynamic workload: the cache chasing a moving hot set (§7.4).

Runs the hot-in scenario — every few seconds the coldest keys jump to the
top of the popularity ranking — against the real statistics/controller
machinery, and renders the per-second throughput as a sparkline so the
dips-and-recoveries of Fig 11(a) are visible in the terminal.

Run:  python examples/dynamic_workload.py
"""

from repro.sim.emulation import DynamicsEmulator, EmulationConfig

BARS = " .:-=+*#%@"


def sparkline(series, peak=None):
    peak = peak or max(series)
    return "".join(BARS[min(9, int(9 * v / peak))] for v in series)


def run(kind, duration=24.0):
    config = EmulationConfig(
        num_keys=20_000, cache_items=1_000, num_servers=32,
        server_rate=10_000.0, churn_kind=kind, churn_n=100,
        churn_interval=6.0 if kind == "hot-in" else 1.0,
        duration=duration, samples_per_step=2_000, hot_threshold=6,
        seed=3,
    )
    emulator = DynamicsEmulator(config)
    result = emulator.run()
    per_second = result.rebinned(1.0)
    peak = max(per_second)
    print(f"\n== {kind} (N={config.churn_n} every "
          f"{config.churn_interval:.0f}s) ==")
    print(f"  tput/s : |{sparkline(per_second, peak)}|  "
          f"peak {peak / 1e6:.2f} MQPS")
    marks = "".join("^" if any(abs(t - s) < 0.5 for t in result.churn_times)
                    else " " for s in range(len(per_second)))
    print(f"  churn  : |{marks}|")
    print(f"  controller: {emulator.controller.insertions} insertions, "
          f"{emulator.controller.evictions} evictions, "
          f"{emulator.controller.reports_received} heavy-hitter reports")


def main():
    print("NetCache under dynamic workloads (real sketches + controller, "
          "hybrid data path)")
    for kind in ("hot-in", "random", "hot-out"):
        run(kind)
    print("\nhot-in dips hard and recovers; random barely dips; hot-out is "
          "flat -- the Fig 11 shapes.")


if __name__ == "__main__":
    main()
