#!/usr/bin/env python3
"""Quickstart: build a NetCache rack and use it like a key-value store.

Builds a simulated 8-server storage rack with a NetCache ToR switch, loads
a small data set, warms the cache with the hottest items, and issues
Get/Put/Delete through the client library — showing cache hits served by
the switch, write-through invalidation, and the data-plane value update.

Run:  python examples/quickstart.py
"""

from repro import default_workload, make_cluster


def main():
    # A rack: 8 storage servers behind one NetCache ToR switch.
    cluster = make_cluster(
        num_servers=8,
        cache_items=64,          # switch cache capacity (items)
        lookup_entries=1024,     # scaled-down switch geometry
        value_slots=1024,
    )

    # A Zipf-0.99 workload over 1 000 keys; load every item into its
    # hash-partitioned owner server.
    workload = default_workload(num_keys=1_000, skew=0.99)
    cluster.load_workload_data(workload)

    # Warm the switch cache with the 64 hottest items (the controller
    # fetches each value from the owning server, §4.3).
    installed = cluster.warm_cache(workload)
    print(f"cache warmed with {installed} items")

    client = cluster.sync_client()
    raw = cluster.clients[0]

    # --- reads ------------------------------------------------------------
    hot = workload.hottest_keys(1)[0]
    cold = workload.keyspace.key(workload.popularity.item_at(900))

    value = client.get(hot)
    print(f"GET hot  key -> {value[:16]!r}...  "
          f"(served by switch: {raw.cache_hits == 1})")

    value = client.get(cold)
    print(f"GET cold key -> {value[:16]!r}...  "
          f"(served by server: {raw.cache_hits == 1})")

    # --- write-through coherence -------------------------------------------
    client.put(hot, b"updated-by-quickstart")
    print("PUT hot key (switch invalidated the entry, server updated it "
          "and pushed the new value back)")
    value = client.get(hot)
    print(f"GET hot  key -> {value!r}")

    client.delete(hot)
    print(f"DELETE hot key -> GET now returns {client.get(hot)!r}")

    # --- what the switch saw -----------------------------------------------
    dataplane = cluster.switch.dataplane
    print(f"\nswitch data plane: {dataplane.cache_hits} hits, "
          f"{dataplane.cache_misses} misses, "
          f"{dataplane.invalidations} invalidations, "
          f"{dataplane.updates_received} data-plane value updates")
    print(f"client latencies (us): "
          f"{[round(l * 1e6, 1) for l in raw.latencies[:6]]}")


if __name__ == "__main__":
    main()
