#!/usr/bin/env python3
"""Web objects: the §5 interface extensions in action.

The prototype's data plane matches fixed 16-byte keys and serves values up
to 128 bytes.  Real web workloads have neither: keys are URLs/user ids and
some objects are kilobytes.  This example stores a small "web service"
data set — session tokens, user profiles, a rendered page fragment — using

* :class:`VariableKeyClient` — arbitrary-length keys hashed to 16-byte
  cache keys, with collision detection via the embedded original key;
* :class:`BigValueClient` — >128-byte objects split into cacheable chunks
  spread across partitions.

Run:  python examples/web_objects.py
"""

from repro import default_workload, make_cluster
from repro.client.bigvalues import BigValueClient
from repro.client.hashedkeys import HashedKeyCodec, VariableKeyClient


def main():
    cluster = make_cluster(num_servers=8, cache_items=64,
                           lookup_entries=1024, value_slots=1024)
    # (no preloaded workload needed; we write our own objects)
    sync = cluster.sync_client()

    print("== variable-length keys (hashed to the 16-byte interface) ==")
    kv = VariableKeyClient(sync, codec=HashedKeyCodec())
    objects = {
        b"session:3f9a1c77-90ab": b"uid=184467;ttl=3600",
        b"user:184467:name": b"Ada Lovelace",
        b"very/long/key/names/work/too/abcdefghijklmnopqrstuvwxyz":
            b"and are verified against the stored original key",
    }
    for key, value in objects.items():
        kv.put(key, value)
    for key, value in objects.items():
        got = kv.get(key)
        status = "ok" if got == value else "MISMATCH"
        print(f"  GET {key[:36]!r:<40} -> {status}")
    print(f"  hash collisions observed: {kv.collisions}")

    print("\n== big values (chunked over derived keys) ==")
    bv = BigValueClient(sync)
    page = (b"<html><body>" + b"<p>rendered content</p>" * 40 +
            b"</body></html>")
    print(f"  storing a {len(page)}-byte page fragment "
          f"(> {128}-byte single-pass limit)")
    bv.put(b"page:home:render", page)
    got = bv.get(b"page:home:render")
    print(f"  reassembled {len(got)} bytes, intact: {got == page}")
    print(f"  chunked writes: {bv.chunked_writes}, "
          f"chunk count: {bv.codec.num_chunks(len(page))}")

    owners = {
        cluster.partitioner.server_for(bv.codec.chunk_key(
            b"page:home:render", i))
        for i in range(bv.codec.num_chunks(len(page)))
    }
    print(f"  chunks spread over {len(owners)} of "
          f"{len(cluster.servers)} servers (load spreading)")

    print("\n== both layers compose ==")
    kv.put(b"user:184467:avatar-small", b"\x89PNG tiny")
    print(f"  GET avatar -> {kv.get(b'user:184467:avatar-small')!r}")


if __name__ == "__main__":
    main()
