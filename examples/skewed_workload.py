#!/usr/bin/env python3
"""Skewed workload: why an in-memory rack needs an in-network cache.

Drives the same Zipf-0.99 workload against (a) a plain rack and (b) a
NetCache rack in the packet-level simulator, then reproduces the full-scale
(128-server) comparison with the rate-equilibrium model — the §7.3 story at
example scale.

Run:  python examples/skewed_workload.py
"""

import numpy as np

from repro import ClusterConfig, Cluster, default_workload
from repro.client.zipf import ZipfDistribution
from repro.sim.ratesim import RateSimConfig, simulate, top_k_mask


def packet_level_comparison():
    print("== packet-level rack (8 servers, drop queues, Zipf 0.99) ==")
    results = {}
    for enable_cache in (False, True):
        workload = default_workload(num_keys=2_000, skew=0.99, seed=7)
        cluster = Cluster(ClusterConfig(
            num_servers=8, server_rate=10_000.0, enable_cache=enable_cache,
            cache_items=100, lookup_entries=1024, value_slots=1024,
            server_queue_limit=64, seed=7,
        ))
        cluster.load_workload_data(workload)
        if enable_cache:
            cluster.warm_cache(workload, 100)
        client = cluster.add_workload_client(workload, rate=150_000.0)
        cluster.run(0.1)

        name = "NetCache" if enable_cache else "NoCache "
        received = client.received
        loads = np.array([s.received for s in cluster.servers.values()],
                         float)
        print(f"  {name}: delivered {received:6d} queries "
              f"({client.cache_hits} by the switch); "
              f"server load max/mean = {loads.max() / loads.mean():.2f}")
        results[name.strip()] = received
    speedup = results["NetCache"] / results["NoCache"]
    print(f"  -> NetCache delivers {speedup:.1f}x the queries\n")


def full_scale_comparison():
    print("== full-scale rack (128 servers, rate-equilibrium model) ==")
    probs = ZipfDistribution(1_000_000, 0.99).probs
    config = RateSimConfig(num_servers=128)
    nocache = simulate(probs, None, config)
    netcache = simulate(probs, top_k_mask(probs, 10_000), config)
    print(f"  NoCache : {nocache.throughput / 1e9:.2f} BQPS "
          f"(bottlenecked by server {nocache.bottleneck})")
    print(f"  NetCache: {netcache.throughput / 1e9:.2f} BQPS "
          f"({netcache.cache_throughput / 1e9:.2f} from the switch, "
          f"{netcache.server_throughput / 1e9:.2f} from servers; "
          f"binding constraint: {netcache.binding})")
    print(f"  -> {netcache.throughput / nocache.throughput:.1f}x improvement "
          f"(paper: ~10x at Zipf 0.99)")


def main():
    packet_level_comparison()
    full_scale_comparison()


if __name__ == "__main__":
    main()
