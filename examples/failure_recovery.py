#!/usr/bin/env python3
"""Switch failure and recovery: why the cache is not critical state (§3).

"Since the switch is a read cache, if the switch fails, operators can
simply reboot the switch with an empty cache ... Because NetCache caches
are small, they will refill rapidly."

This example reboots the switch mid-run and shows (1) no write is lost,
(2) reads keep working immediately (served by the servers), and (3) the
heavy-hitter machinery repopulates the cache within seconds.

Run:  python examples/failure_recovery.py
"""

from repro import default_workload, make_cluster
from repro.sim.emulation import DynamicsEmulator, EmulationConfig

BARS = " .:-=+*#%@"


def sparkline(series):
    peak = max(series)
    return "".join(BARS[min(9, int(9 * v / peak))] for v in series)


def correctness_story():
    print("== correctness through a reboot (packet level) ==")
    cluster = make_cluster(num_servers=4, cache_items=32,
                           lookup_entries=512, value_slots=512)
    workload = default_workload(num_keys=300, skew=0.99)
    cluster.load_workload_data(workload)
    cluster.warm_cache(workload)
    client = cluster.sync_client()
    hot = workload.hottest_keys(1)[0]

    client.put(hot, b"written-before-the-crash")
    dropped = cluster.switch.reboot()
    print(f"  switch rebooted: {dropped} cache entries lost "
          f"(cache size now {cluster.switch.dataplane.cache_size()})")
    value = client.get(hot)
    print(f"  GET after reboot -> {value!r}  (served by the server; "
          f"nothing lost)")


def performance_story():
    print("\n== throughput through a reboot (hybrid emulation) ==")
    config = EmulationConfig(
        num_keys=20_000, cache_items=1_000, num_servers=32,
        server_rate=10_000.0, churn_kind="hot-out", churn_n=1,
        churn_interval=1_000.0, duration=20.0, samples_per_step=4_000,
        hot_threshold=4, reboot_times=(10.0,), seed=3,
    )
    result = DynamicsEmulator(config).run()
    per_second = result.rebinned(1.0)
    print(f"  tput/s : |{sparkline(per_second)}|")
    marks = "".join("^" if abs(s - 10.0) < 0.5 else " "
                    for s in range(len(per_second)))
    print(f"  reboot : |{marks}|")
    refill = next(i for i, size in enumerate(result.cache_size[100:])
                  if size == 1_000)
    print(f"  cache refilled to capacity {refill * 0.1:.1f}s after the "
          f"reboot")


def main():
    correctness_story()
    performance_story()


if __name__ == "__main__":
    main()
