#!/usr/bin/env python3
"""YCSB workloads on a NetCache rack: where in-network caching pays off.

Evaluates the standard YCSB mixes (§7.1 cites YCSB as the source of the
skewed-workload methodology) on the full-scale rack model and prints the
NoCache vs NetCache comparison per workload — quantifying the paper's
guidance that NetCache targets read-intensive workloads and that skewed
writes erase the benefit (§5, §7.3).

Run:  python examples/ycsb_comparison.py
"""

import dataclasses

from repro.client.ycsb import presets, ycsb_workload
from repro.sim.ratesim import RateSimConfig, simulate, top_k_mask

NUM_KEYS = 100_000
CACHE_ITEMS = 1_000

DESCRIPTIONS = {
    "A": "50% reads / 50% updates (update heavy)",
    "B": "95% reads /  5% updates (read mostly)",
    "C": "100% reads (read only)",
    "D": "95% reads /  5% inserts (read latest)",
    "F": "read-modify-write (50/50 at query level)",
}


def main():
    base = RateSimConfig(num_servers=128)
    print(f"YCSB on a 128-server rack, {CACHE_ITEMS} cached items, "
          f"{NUM_KEYS} keys\n")
    print(f"{'wl':>3}  {'mix':<42} {'NoCache':>9} {'NetCache':>9} "
          f"{'speedup':>8}")
    for name in sorted(presets()):
        workload = ycsb_workload(name, num_keys=NUM_KEYS)
        spec = workload.spec
        reads = workload.read_item_probs()
        writes = workload.write_item_probs()
        config = dataclasses.replace(base, write_ratio=spec.write_ratio)
        kwargs = {}
        if spec.write_ratio > 0:
            kwargs["write_probs"] = writes
        nocache = simulate(reads, None, config, **kwargs)
        netcache = simulate(reads, top_k_mask(reads, CACHE_ITEMS), config,
                            **kwargs)
        speedup = netcache.throughput / nocache.throughput
        print(f"{name:>3}  {DESCRIPTIONS[name]:<42} "
              f"{nocache.throughput / 1e9:>8.2f}B "
              f"{netcache.throughput / 1e9:>8.2f}B "
              f"{speedup:>7.1f}x")
    print("\nRead-heavy C and D gain the most; A/B/F write the same hot "
          "keys they read, so\nthe cache spends its time invalidated — the "
          "Fig 10(d) effect, per workload.")


if __name__ == "__main__":
    main()
